package linalg

// Neighbor is a candidate search result: a vector id and its distance to
// the query under the active metric (smaller is better).
type Neighbor struct {
	ID   int64
	Dist float32
}

// TopK maintains the k nearest neighbors seen so far using a bounded
// max-heap keyed on distance: the root is the worst retained neighbor, so a
// new candidate replaces it in O(log k) when closer.
//
// The zero value is not usable; construct with NewTopK.
type TopK struct {
	k    int
	heap []Neighbor
}

// NewTopK returns a collector for the k nearest neighbors. k must be >= 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("linalg: TopK requires k >= 1")
	}
	return &TopK{k: k, heap: make([]Neighbor, 0, k)}
}

// Reset empties the collector and re-targets it to the k nearest, keeping
// the heap's backing array so a pooled collector performs no steady-state
// allocations. It returns the receiver for call chaining, and makes the
// zero TopK usable.
func (t *TopK) Reset(k int) *TopK {
	if k < 1 {
		panic("linalg: TopK requires k >= 1")
	}
	t.k = k
	t.heap = t.heap[:0]
	return t
}

// Len reports how many neighbors are currently retained.
func (t *TopK) Len() int { return len(t.heap) }

// Full reports whether k neighbors are retained.
func (t *TopK) Full() bool { return len(t.heap) == t.k }

// Worst returns the distance of the worst retained neighbor. It panics when
// the collector is empty; callers should guard with Full or Len.
func (t *TopK) Worst() float32 { return t.heap[0].Dist }

// Push offers a candidate. It reports whether the candidate was retained.
func (t *TopK) Push(id int64, dist float32) bool {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Neighbor{ID: id, Dist: dist})
		t.siftUp(len(t.heap) - 1)
		return true
	}
	if dist >= t.heap[0].Dist {
		return false
	}
	t.heap[0] = Neighbor{ID: id, Dist: dist}
	t.siftDown(0)
	return true
}

// PushBlock offers the paired candidates ids[i]/dists[i] in index order,
// with exactly the outcome of calling Push once per pair. It is the bulk
// fast path of the blocked scans: once the heap is full the common reject
// case is a single comparison against a locally cached worst distance,
// with no per-candidate method call or heap-size check.
func (t *TopK) PushBlock(ids []int64, dists []float32) {
	i := 0
	for ; len(t.heap) < t.k && i < len(dists); i++ {
		t.Push(ids[i], dists[i])
	}
	if i >= len(dists) {
		return
	}
	worst := t.heap[0].Dist
	for ; i < len(dists); i++ {
		d := dists[i]
		if d >= worst {
			continue
		}
		t.heap[0] = Neighbor{ID: ids[i], Dist: d}
		t.siftDown(0)
		worst = t.heap[0].Dist
	}
}

// Results returns the retained neighbors sorted by ascending distance and
// resets the collector.
func (t *TopK) Results() []Neighbor {
	out := make([]Neighbor, 0, len(t.heap))
	return t.AppendResults(out)
}

// AppendResults appends the retained neighbors, sorted by ascending
// distance, to dst and returns the extended slice, emptying the collector.
// It is the allocation-free variant of Results for callers that own a
// reusable destination buffer (or have pre-sized the caller-visible result
// slice).
func (t *TopK) AppendResults(dst []Neighbor) []Neighbor {
	base := len(dst)
	dst = append(dst, t.heap...)
	out := dst[base:]
	// Heap-sort out in place: repeatedly move the current worst (root)
	// to the end of the shrinking prefix.
	for i := len(t.heap) - 1; i >= 0; i-- {
		out[i] = t.heap[0]
		last := len(t.heap) - 1
		t.heap[0] = t.heap[last]
		t.heap = t.heap[:last]
		if last > 0 {
			t.siftDown(0)
		}
	}
	return dst
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].Dist >= t.heap[i].Dist {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.heap[l].Dist > t.heap[largest].Dist {
			largest = l
		}
		if r < n && t.heap[r].Dist > t.heap[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}

// MergeNeighbors merges several ascending-sorted neighbor lists into the k
// best overall, deduplicating by id (keeping the smaller distance).
func MergeNeighbors(k int, lists ...[]Neighbor) []Neighbor {
	top := NewTopK(k)
	seen := make(map[int64]float32, k*2)
	for _, list := range lists {
		for _, n := range list {
			if d, ok := seen[n.ID]; ok && d <= n.Dist {
				continue
			}
			seen[n.ID] = n.Dist
			top.Push(n.ID, n.Dist)
		}
	}
	return top.Results()
}
