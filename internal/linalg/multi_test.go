package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randVec fills vectors with a mix of ordinary values and hard cases
// (negative zero, denormals, huge magnitudes) so bit-identity is tested
// where rounding actually varies between non-identical implementations.
func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		switch rng.Intn(16) {
		case 0:
			v[i] = float32(math.Copysign(0, -1))
		case 1:
			v[i] = 1e-39 // denormal
		case 2:
			v[i] = 3e18 * float32(rng.NormFloat64())
		default:
			v[i] = float32(rng.NormFloat64())
		}
	}
	return v
}

func f32Equal(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}

// TestMultiKernelBitIdentity sweeps dims 1..67 (crossing the 4-way unroll
// boundary many times), all three metrics, ragged final tiles, and
// Q ∈ {1,2,7,64}: the multi-query kernels, the per-query blocked kernels,
// and the scalar reference must agree bit-for-bit on every (query, row)
// pair.
func TestMultiKernelBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	metrics := []Metric{L2, InnerProduct, Angular}
	for dim := 1; dim <= 67; dim++ {
		rows := 1 + rng.Intn(41) // ragged vs any tile size
		block := make([]float32, rows*dim)
		copy(block, randVec(rng, rows*dim))
		for _, qn := range []int{1, 2, 7, 64} {
			queries := make([][]float32, qn)
			qm := NewMatrix(dim, qn)
			for i := range queries {
				queries[i] = randVec(rng, dim)
				qm.AppendRow(queries[i])
			}
			for _, m := range metrics {
				// Per-query blocked kernel (itself asserted against the
				// scalar reference below).
				single := make([][]float32, qn)
				for i, q := range queries {
					single[i] = make([]float32, rows)
					DistanceBlock(m, q, block, single[i])
				}
				// Scalar reference.
				for i, q := range queries {
					for r := 0; r < rows; r++ {
						want := Distance(m, q, block[r*dim:(r+1)*dim])
						if !f32Equal(single[i][r], want) {
							t.Fatalf("dim=%d m=%v q=%d row=%d: DistanceBlock=%x scalar=%x",
								dim, m, i, r, math.Float32bits(single[i][r]), math.Float32bits(want))
						}
					}
				}
				// Scatter multi kernel.
				outs := make([][]float32, qn)
				for i := range outs {
					outs[i] = make([]float32, rows)
				}
				DistanceMultiScatter(m, queries, block, outs)
				for i := range outs {
					for r := 0; r < rows; r++ {
						if !f32Equal(outs[i][r], single[i][r]) {
							t.Fatalf("dim=%d m=%v q=%d row=%d: scatter=%x single=%x",
								dim, m, i, r, math.Float32bits(outs[i][r]), math.Float32bits(single[i][r]))
						}
					}
				}
				// Matrix multi kernel.
				flat := make([]float32, qn*rows)
				DistanceMultiBlock(m, qm, block, flat)
				for i := 0; i < qn; i++ {
					for r := 0; r < rows; r++ {
						if !f32Equal(flat[i*rows+r], single[i][r]) {
							t.Fatalf("dim=%d m=%v q=%d row=%d: matrix multi=%x single=%x",
								dim, m, i, r, math.Float32bits(flat[i*rows+r]), math.Float32bits(single[i][r]))
						}
					}
				}
			}
			// Dot / SquaredL2 multi forms against their scalar references.
			flat := make([]float32, qn*rows)
			DotMultiBlock(qm, block, flat)
			for i, q := range queries {
				for r := 0; r < rows; r++ {
					if want := Dot(q, block[r*dim:(r+1)*dim]); !f32Equal(flat[i*rows+r], want) {
						t.Fatalf("dim=%d q=%d row=%d: DotMultiBlock=%x Dot=%x",
							dim, i, r, math.Float32bits(flat[i*rows+r]), math.Float32bits(want))
					}
				}
			}
			SquaredL2MultiBlock(qm, block, flat)
			for i, q := range queries {
				for r := 0; r < rows; r++ {
					if want := SquaredL2(q, block[r*dim:(r+1)*dim]); !f32Equal(flat[i*rows+r], want) {
						t.Fatalf("dim=%d q=%d row=%d: SquaredL2MultiBlock=%x SquaredL2=%x",
							dim, i, r, math.Float32bits(flat[i*rows+r]), math.Float32bits(want))
					}
				}
			}
		}
	}
}

// TestMultiKernelRaggedTiles forces multiple row tiles, including a ragged
// final tile, through the internal core with tiny tile sizes: tiling must
// never change any (query, row) output.
func TestMultiKernelRaggedTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{1, 3, 4, 7, 32, 67} {
		rows := 97 // prime: ragged against every small tile
		block := randVec(rng, rows*dim)[:rows*dim]
		for _, qn := range []int{1, 2, 7, 64} {
			queries := make([][]float32, qn)
			for i := range queries {
				queries[i] = randVec(rng, dim)
			}
			want := make([][]float32, qn)
			for i, q := range queries {
				want[i] = make([]float32, rows)
				DistanceBlock(Angular, q, block, want[i])
			}
			outs := make([][]float32, qn)
			for i := range outs {
				outs[i] = make([]float32, rows)
			}
			DistanceMultiScatter(Angular, queries, block, outs)
			for i := range outs {
				for r := 0; r < rows; r++ {
					if !f32Equal(outs[i][r], want[i][r]) {
						t.Fatalf("dim=%d qn=%d q=%d row=%d: tiled=%x single=%x",
							dim, qn, i, r, math.Float32bits(outs[i][r]), math.Float32bits(want[i][r]))
					}
				}
			}
		}
	}
}

// TestFusedDistanceBlockExact asserts the satellite-1 fusion claim
// directly: the fused InnerProduct/Angular epilogue produces exactly the
// bits of the two-pass form (DotBlock then a separate -x / 1-x sweep).
func TestFusedDistanceBlockExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dim := range []int{1, 5, 32, 67} {
		rows := 53
		block := randVec(rng, rows*dim)[:rows*dim]
		q := randVec(rng, dim)
		dots := make([]float32, rows)
		DotBlock(q, block, dots)

		fused := make([]float32, rows)
		DistanceBlock(InnerProduct, q, block, fused)
		for i := range fused {
			if want := -dots[i]; !f32Equal(fused[i], want) {
				t.Fatalf("dim=%d row=%d IP: fused=%x two-pass=%x", dim, i,
					math.Float32bits(fused[i]), math.Float32bits(want))
			}
		}
		DistanceBlock(Angular, q, block, fused)
		for i := range fused {
			if want := 1 - dots[i]; !f32Equal(fused[i], want) {
				t.Fatalf("dim=%d row=%d Angular: fused=%x two-pass=%x", dim, i,
					math.Float32bits(fused[i]), math.Float32bits(want))
			}
		}
	}
}

// TestKernelAsmMatchesGo pins the arch-specific kernels to the portable
// ones (on non-amd64 builds the two are the same function and the test is
// trivially green).
func TestKernelAsmMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for dim := 1; dim <= 67; dim++ {
		rows := 1 + rng.Intn(9)
		block := randVec(rng, rows*dim)[:rows*dim]
		q0, q1, q2, q3 := randVec(rng, dim), randVec(rng, dim), randVec(rng, dim), randVec(rng, dim)
		for op := opNone; op <= opOneMinus; op++ {
			got := make([]float32, rows)
			want := make([]float32, rows)
			dotBlockKernel(q0, block, got, op)
			dotBlockGo(q0, block, want, op)
			for i := range got {
				if !f32Equal(got[i], want[i]) {
					t.Fatalf("dotBlock dim=%d op=%d row=%d: kernel=%x go=%x", dim, op, i,
						math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
			g := [4][]float32{make([]float32, rows), make([]float32, rows), make([]float32, rows), make([]float32, rows)}
			w := [4][]float32{make([]float32, rows), make([]float32, rows), make([]float32, rows), make([]float32, rows)}
			dotMulti4Kernel(q0, q1, q2, q3, block, g[0], g[1], g[2], g[3], op)
			dotMulti4Go(q0, q1, q2, q3, block, w[0], w[1], w[2], w[3], op)
			for qi := 0; qi < 4; qi++ {
				for i := range g[qi] {
					if !f32Equal(g[qi][i], w[qi][i]) {
						t.Fatalf("dotMulti4 dim=%d op=%d q=%d row=%d: kernel=%x go=%x", dim, op, qi, i,
							math.Float32bits(g[qi][i]), math.Float32bits(w[qi][i]))
					}
				}
			}
		}
		got := make([]float32, rows)
		want := make([]float32, rows)
		l2BlockKernel(q0, block, got)
		l2BlockGo(q0, block, want)
		for i := range got {
			if !f32Equal(got[i], want[i]) {
				t.Fatalf("l2Block dim=%d row=%d: kernel=%x go=%x", dim, i,
					math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
		g := [4][]float32{make([]float32, rows), make([]float32, rows), make([]float32, rows), make([]float32, rows)}
		w := [4][]float32{make([]float32, rows), make([]float32, rows), make([]float32, rows), make([]float32, rows)}
		l2Multi4Kernel(q0, q1, q2, q3, block, g[0], g[1], g[2], g[3])
		l2Multi4Go(q0, q1, q2, q3, block, w[0], w[1], w[2], w[3])
		for qi := 0; qi < 4; qi++ {
			for i := range g[qi] {
				if !f32Equal(g[qi][i], w[qi][i]) {
					t.Fatalf("l2Multi4 dim=%d q=%d row=%d: kernel=%x go=%x", dim, qi, i,
						math.Float32bits(g[qi][i]), math.Float32bits(w[qi][i]))
				}
			}
		}
	}
}
