package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkKernelMultiQuery measures the multi-query scan kernel at
// Q=1/8/64 on an in-cache arena (fits L2) and an out-of-cache arena
// (streams from memory), dim 32. ns/op spans one full Q×rows distance
// matrix; the per-pair rate is what improves as rows are reused across
// queries.
func BenchmarkKernelMultiQuery(b *testing.B) {
	const dim = 32
	rng := rand.New(rand.NewSource(1))
	for _, sz := range []struct {
		name string
		rows int
	}{
		{"incache", 2048},      // 256KB arena: L2-resident
		{"outofcache", 262144}, // 32MB arena: streams from memory
	} {
		block := make([]float32, sz.rows*dim)
		for i := range block {
			block[i] = rng.Float32()
		}
		for _, qn := range []int{1, 8, 64} {
			queries := make([][]float32, qn)
			outs := make([][]float32, qn)
			for i := range queries {
				queries[i] = make([]float32, dim)
				for j := range queries[i] {
					queries[i][j] = rng.Float32()
				}
				outs[i] = make([]float32, sz.rows)
			}
			b.Run(fmt.Sprintf("%s/Q=%d", sz.name, qn), func(b *testing.B) {
				b.SetBytes(int64(sz.rows) * dim * 4)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					DistanceMultiScatter(L2, queries, block, outs)
				}
			})
		}
	}
}
