package linalg

// Kernel op codes: the epilogue applied to a dot product inside the
// scoring loop. Fusing the metric's post-pass here (instead of a second
// sweep over out) keeps results bit-identical — negation and 1-x are
// exact float32 operations wherever they are applied — while saving one
// full pass over the output per scan.
const (
	opNone     = 0 // out = dot
	opNeg      = 1 // out = -dot      (InnerProduct)
	opOneMinus = 2 // out = 1 - dot   (Angular)
)

// dotBlockGo is the portable scalar dot-product scan: q against every row
// of the packed arena block, with the op epilogue fused per row. The
// accumulation is exactly Dot's — four accumulators over a 4-way unrolled
// loop, tail into s0, summed ((s0+s1)+s2)+s3 — which is the arithmetic
// contract every other kernel (SSE, multi-query) must reproduce bitwise.
func dotBlockGo(q, block []float32, out []float32, op int) {
	dim := len(q)
	for i := range out {
		row := block[i*dim : i*dim+dim]
		var s0, s1, s2, s3 float32
		j := 0
		for ; j+4 <= dim; j += 4 {
			s0 += q[j] * row[j]
			s1 += q[j+1] * row[j+1]
			s2 += q[j+2] * row[j+2]
			s3 += q[j+3] * row[j+3]
		}
		for ; j < dim; j++ {
			s0 += q[j] * row[j]
		}
		s := s0 + s1 + s2 + s3
		switch op {
		case opNeg:
			s = -s
		case opOneMinus:
			s = 1 - s
		}
		out[i] = s
	}
}

// l2BlockGo is the portable scalar squared-L2 scan, bit-identical per row
// to SquaredL2 (same accumulator structure as dotBlockGo).
func l2BlockGo(q, block []float32, out []float32) {
	dim := len(q)
	for i := range out {
		row := block[i*dim : i*dim+dim]
		var s0, s1, s2, s3 float32
		j := 0
		for ; j+4 <= dim; j += 4 {
			d0 := q[j] - row[j]
			d1 := q[j+1] - row[j+1]
			d2 := q[j+2] - row[j+2]
			d3 := q[j+3] - row[j+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		for ; j < dim; j++ {
			d := q[j] - row[j]
			s0 += d * d
		}
		out[i] = s0 + s1 + s2 + s3
	}
}

// dotMulti4Go scores four queries against every row of block in one pass
// (each row is read once and reused). Per (query, row) the arithmetic is
// exactly dotBlockGo's, so outputs are bit-identical to four single-query
// scans; only the memory traffic differs.
func dotMulti4Go(q0, q1, q2, q3, block []float32, o0, o1, o2, o3 []float32, op int) {
	dotBlockGo(q0, block, o0, op)
	dotBlockGo(q1, block, o1, op)
	dotBlockGo(q2, block, o2, op)
	dotBlockGo(q3, block, o3, op)
}

// l2Multi4Go is the squared-L2 counterpart of dotMulti4Go.
func l2Multi4Go(q0, q1, q2, q3, block []float32, o0, o1, o2, o3 []float32) {
	l2BlockGo(q0, block, o0)
	l2BlockGo(q1, block, o1)
	l2BlockGo(q2, block, o2)
	l2BlockGo(q3, block, o3)
}
