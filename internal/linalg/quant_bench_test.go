package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkKernelQuantized measures the byte-domain scan kernels at
// Q=1/8/64 on in-cache and out-of-cache code arenas. SQ8 is the decode
// kernel family (dim 32, one byte per dimension); PQ is the ADC
// accumulation (m=8 subspaces, ksub=256, one byte per subspace). ns/op
// spans one full Q×rows distance matrix; the per-pair rate is what
// improves as each decoded (SQ8) or loaded (PQ) code row is shared
// across the query tile.
func BenchmarkKernelQuantized(b *testing.B) {
	rng := rand.New(rand.NewSource(1))

	b.Run("SQ8", func(b *testing.B) {
		const dim = 32
		min := make([]float32, dim)
		scale := make([]float32, dim)
		for j := range min {
			min[j] = rng.Float32() - 0.5
			scale[j] = rng.Float32() / 255
		}
		for _, sz := range []struct {
			name string
			rows int
		}{
			{"incache", 8192},      // 256KB codes: L2-resident
			{"outofcache", 262144}, // 8MB codes: streams from memory
		} {
			codes := make([]byte, sz.rows*dim)
			rng.Read(codes)
			for _, qn := range []int{1, 8, 64} {
				queries := make([][]float32, qn)
				outs := make([][]float32, qn)
				for i := range queries {
					queries[i] = make([]float32, dim)
					for j := range queries[i] {
						queries[i][j] = rng.Float32()
					}
					outs[i] = make([]float32, sz.rows)
				}
				b.Run(fmt.Sprintf("%s/Q=%d", sz.name, qn), func(b *testing.B) {
					b.SetBytes(int64(sz.rows) * dim)
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						// Queries stand in for precomputed residuals.
						DistanceSQ8MultiScatter(L2, queries, min, scale, codes, outs)
					}
				})
			}
		}
	})

	b.Run("PQ", func(b *testing.B) {
		const m, ksub = 8, 256
		for _, sz := range []struct {
			name string
			rows int
		}{
			{"incache", 32768},      // 256KB codes: L2-resident
			{"outofcache", 1 << 20}, // 8MB codes: streams from memory
		} {
			codes := make([]byte, sz.rows*m)
			rng.Read(codes)
			for _, qn := range []int{1, 8, 64} {
				tables := make([][]float32, qn)
				outs := make([][]float32, qn)
				for i := range tables {
					tables[i] = make([]float32, m*ksub)
					for j := range tables[i] {
						tables[i][j] = rng.Float32()
					}
					outs[i] = make([]float32, sz.rows)
				}
				b.Run(fmt.Sprintf("%s/Q=%d", sz.name, qn), func(b *testing.B) {
					b.SetBytes(int64(sz.rows) * m)
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						PQScan8Multi(tables, codes, m, ksub, outs)
					}
				})
			}
		}
	})
}
