# Developer / CI entry points. `make ci` is the gate: vet, the full test
# suite under the race detector, and a single pass over every benchmark so
# the macro experiments at least compile and run.

GO ?= go

.PHONY: all build test race vet bench bench-churn ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race-tested suite: every package, including the concurrent
# SearchBatch / live-collection / server-client tests.
race:
	$(GO) test -race ./...

# One iteration of every benchmark (root figure/table suite, the churn
# benchmark BenchmarkSearchAfterDeletes, and package micro-benchmarks) —
# a compile-and-smoke pass, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# The churn benchmark alone: search latency after mass deletes + segment
# compaction (delete-heavy lifecycle).
bench-churn:
	$(GO) test -bench=SearchAfterDeletes -benchtime=1x .

ci: vet race bench
