# Developer / CI entry points. `make ci` is the gate: vet, the full test
# suite under the race detector (crash-matrix recovery tests included), a
# single pass over every benchmark so the macro experiments at least
# compile and run, the online-reconfiguration gate (migration determinism
# and the migration crash matrix, run explicitly so they cannot be
# filtered out), the alloc-gate tests in strict mode (so the
# zero-allocation query-path guarantee — with persistence enabled —
# cannot be silently skipped), a 30s-per-target fuzz smoke pass over the
# snapshot/WAL decoders, and a bench-json smoke pass.

GO ?= go

.PHONY: all build test race vet bench bench-churn bench-server bench-json bench-json-smoke bench-compare alloc-gate reconfig-gate fuzz-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race-tested suite: every package, including the concurrent
# SearchBatch / live-collection / server-client tests.
race:
	$(GO) test -race ./...

# One iteration of every benchmark (root figure/table suite, the churn
# benchmark BenchmarkSearchAfterDeletes, and package micro-benchmarks) —
# a compile-and-smoke pass, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# The churn benchmark alone: search latency after mass deletes + segment
# compaction (delete-heavy lifecycle).
bench-churn:
	$(GO) test -bench=SearchAfterDeletes -benchtime=1x .

# The end-to-end server benchmark alone: the same engine and query set
# served over real TCP as SearchBatch calls under each protocol mode
# (JSON serial, binary serial, binary pipelined), reporting QPS, p50/p99
# call latency, and recall — which must be identical across modes. The
# pipelined run fails unless it clearly beats serial JSON.
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkServerWire' -benchtime=3x .

# The query-path benchmark trajectory: the root churn + SearchBatch
# worker-scaling + sharded insert/search benchmarks, the per-index
# single-query benchmarks, and the end-to-end server wire benchmarks
# (QPS/latency/recall per protocol mode), with allocation stats, written
# to BENCH_query.json. The file is committed so future performance PRs diff
# against a baseline; only regenerate it deliberately, on the baseline
# machine.
BENCH_JSON_OUT ?= BENCH_query.json

bench-json:
	@set -e; tmp=$$(mktemp); trap 'rm -f '"$$tmp" EXIT; \
	if ! $(GO) test -run '^$$' -bench 'SearchAfterDeletes|SearchBatchWorkers' -benchmem -benchtime=1x . > "$$tmp" 2>&1; \
		then cat "$$tmp"; exit 1; fi; \
	if ! $(GO) test -run '^$$' -bench 'ShardedInsert' -benchmem -benchtime=100x . >> "$$tmp" 2>&1; \
		then cat "$$tmp"; exit 1; fi; \
	if ! $(GO) test -run '^$$' -bench 'ShardedSearchBatch' -benchmem -benchtime=30x . >> "$$tmp" 2>&1; \
		then cat "$$tmp"; exit 1; fi; \
	if ! $(GO) test -run '^$$' -bench 'BenchmarkHNSWSearch|BenchmarkIVFFlatSearch' -benchmem -benchtime=2000x ./internal/index >> "$$tmp" 2>&1; \
		then cat "$$tmp"; exit 1; fi; \
	if ! $(GO) test -run '^$$' -bench 'BenchmarkKernelMultiQuery|BenchmarkKernelQuantized' -benchmem -benchtime=10x ./internal/linalg >> "$$tmp" 2>&1; \
		then cat "$$tmp"; exit 1; fi; \
	if ! $(GO) test -run '^$$' -bench 'BenchmarkWALAppend' -benchmem -benchtime=2000x ./internal/persist >> "$$tmp" 2>&1; \
		then cat "$$tmp"; exit 1; fi; \
	if ! $(GO) test -run '^$$' -bench 'BenchmarkRecovery' -benchmem -benchtime=3x ./internal/vdms >> "$$tmp" 2>&1; \
		then cat "$$tmp"; exit 1; fi; \
	if ! $(GO) test -run '^$$' -bench 'BenchmarkReconfigureHot' -benchmem -benchtime=20x . >> "$$tmp" 2>&1; \
		then cat "$$tmp"; exit 1; fi; \
	if ! $(GO) test -run '^$$' -bench 'BenchmarkMigrateReshard' -benchmem -benchtime=3x . >> "$$tmp" 2>&1; \
		then cat "$$tmp"; exit 1; fi; \
	if ! $(GO) test -run '^$$' -bench 'BenchmarkServerWire' -benchtime=3x . >> "$$tmp" 2>&1; \
		then cat "$$tmp"; exit 1; fi; \
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON_OUT) < "$$tmp"; \
	echo "wrote $(BENCH_JSON_OUT)"

# The ci smoke pass: same pipeline, but written to a throwaway path so a
# routine `make ci` cannot overwrite the committed baseline.
bench-json-smoke:
	@$(MAKE) --no-print-directory bench-json BENCH_JSON_OUT="$$(mktemp -u)"

# The performance regression fence: re-measure the query-path suite into a
# throwaway JSON and diff it against the committed baseline, failing on any
# >15% ns/op regression. Measurement noise makes this advisory on shared
# machines, so `make ci` only runs it when BENCH_GATE=1 is set (CI on the
# baseline machine); run it directly before committing perf-sensitive work.
BENCH_TOL ?= 15

bench-compare:
	@set -e; tmp=$$(mktemp); trap 'rm -f '"$$tmp" EXIT; \
	$(MAKE) --no-print-directory bench-json BENCH_JSON_OUT="$$tmp"; \
	$(GO) run ./cmd/benchjson -baseline BENCH_query.json -candidate "$$tmp" -tol $(BENCH_TOL)

# The allocation regression fence, run without -race and in strict mode:
# a skipped or missing gate fails the build instead of passing silently.
# Covers the zero-allocation index query path and the persistence gate
# (durable collections must search with exactly the allocations of
# memory-only ones).
alloc-gate:
	@$(GO) test -list 'TestAllocGate' ./internal/index | grep -q TestAllocGateSearch \
		|| { echo "alloc-gate tests missing from ./internal/index"; exit 1; }
	@$(GO) test -list 'TestAllocGate' ./internal/index | grep -q TestAllocGateSearchMultiInto \
		|| { echo "tiled multi-query alloc-gate test missing from ./internal/index"; exit 1; }
	@$(GO) test -list 'TestAllocGate' ./internal/vdms | grep -q TestAllocGatePersistentSearch \
		|| { echo "alloc-gate tests missing from ./internal/vdms"; exit 1; }
	@$(GO) test -list 'TestAllocGate' ./internal/vdms | grep -q TestAllocGateShardedSearch \
		|| { echo "sharded alloc-gate test missing from ./internal/vdms"; exit 1; }
	ALLOC_GATE_STRICT=1 $(GO) test -run 'TestAllocGate' -count=1 ./internal/index ./internal/vdms

# The online-reconfiguration gate, run explicitly (not just as part of
# the suite) so neither half can be filtered out: migration determinism —
# post-migration state bit-identical to a fresh build at the target
# configuration, hot swaps and reshards under churn — and the migration
# crash matrix — a kill injected at every protocol step recovers to
# exactly the old or the new generation, never a mix.
reconfig-gate:
	$(GO) test -run 'TestReconfigure|TestHotSwap|TestMigrate' -count=1 ./internal/vdms
	$(GO) test -run 'TestMigrationCrashMatrix' -count=1 ./internal/persist/crashtest

# Native fuzzing smoke pass over the persistence decoders: 30 seconds per
# target proving hostile snapshot/WAL bytes never panic or OOM — recovery
# either succeeds or returns a typed persist.CorruptError.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzWALReplay' -fuzztime 30s ./internal/persist
	$(GO) test -run '^$$' -fuzz 'FuzzSnapshotDecode' -fuzztime 30s ./internal/persist

# BENCH_GATE=1 additionally runs the bench-compare regression fence (the
# smoke pass already proves the pipeline itself works).
ci: vet race bench reconfig-gate alloc-gate fuzz-smoke bench-json-smoke
ifeq ($(BENCH_GATE),1)
ci: bench-compare
endif
