package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"vdtuner/internal/server"
)

// buildDaemon compiles vdmsd once per test binary.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vdmsd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building vdmsd: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running vdmsd process.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches vdmsd on an ephemeral port and waits for its
// listening line.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "vdmsd listening on ") {
				rest := strings.TrimPrefix(line, "vdmsd listening on ")
				if i := strings.IndexByte(rest, ' '); i > 0 {
					addrCh <- rest[:i]
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &daemon{cmd: cmd, addr: addr}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("vdmsd did not report a listening address")
		return nil
	}
}

func dialDaemon(t *testing.T, addr string) *server.Client {
	t.Helper()
	var cl *server.Client
	var err error
	for i := 0; i < 100; i++ {
		cl, err = server.Dial(addr)
		if err == nil {
			return cl
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("dialing %s: %v", addr, err)
	return nil
}

func waitExit(t *testing.T, d *daemon) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatal("vdmsd did not exit")
	}
}

// TestDaemonFlagValidation: out-of-range flags must be usage errors (exit
// code 2, message on stderr) before any collection state is created — not
// a half-started daemon or a late engine error.
func TestDaemonFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real daemon")
	}
	bin := buildDaemon(t)
	cases := []struct {
		name string
		args []string
	}{
		{"dim", []string{"-dim", "0"}},
		{"negative-dim", []string{"-dim", "-3"}},
		{"expected-rows", []string{"-expected-rows", "0"}},
		{"shards-low", []string{"-shards", "0"}},
		{"shards-high", []string{"-shards", "17"}},
		{"compact-ratio", []string{"-compact-ratio", "1.5"}},
		{"compact-fanin", []string{"-compact-fanin", "1"}},
		{"compact-workers", []string{"-compact-workers", "99"}},
		{"wal-group", []string{"-wal-group", "4096"}},
		{"metric", []string{"-metric", "cosineish"}},
		{"index", []string{"-index", "BTREE"}},
		{"max-request-bytes", []string{"-max-request-bytes", "0"}},
		{"negative-max-request-bytes", []string{"-max-request-bytes", "-1"}},
		{"idle-timeout", []string{"-idle-timeout", "-5s"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, tc.args...)...)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("daemon with %v did not exit with an error (output %q)", tc.args, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("daemon with %v exited %d, want usage error 2 (output %q)", tc.args, code, out)
			}
			if !strings.Contains(string(out), "vdmsd:") || !strings.Contains(string(out), "Usage") {
				t.Fatalf("usage error output missing diagnostic or usage text: %q", out)
			}
		})
	}
}

// TestDaemonBinaryProtocol: a real vdmsd process serves the binary
// pipelined protocol on the same port as JSON, and enforces
// -max-request-bytes on both.
func TestDaemonBinaryProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real daemon")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, "-index", "FLAT", "-metric", "l2", "-dim", "4",
		"-expected-rows", "1000", "-max-request-bytes", "4096")
	defer func() {
		d.cmd.Process.Signal(syscall.SIGTERM)
		waitExit(t, d)
	}()

	jcl := dialDaemon(t, d.addr)
	defer jcl.Close()
	bcl, err := server.DialBinary(d.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bcl.Close()

	// Insert over binary, read back over JSON — one engine, two wires.
	ids, err := bcl.Insert([][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := jcl.Search([]float32{5, 6, 7, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].ID != ids[1] || hits[0].Dist != 0 {
		t.Fatalf("binary insert not visible over JSON: %+v", hits)
	}

	// The daemon's request cap holds on the binary wire: ~4KB limit,
	// ~16KB insert.
	var big [][]float32
	for i := 0; i < 1000; i++ {
		big = append(big, []float32{float32(i), 0, 0, 1})
	}
	if _, err := bcl.Insert(big); err == nil {
		t.Fatal("oversized binary insert accepted by daemon")
	} else if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversize error does not name the limit: %v", err)
	}
	// And on the JSON wire, without killing the daemon for other clients.
	if _, err := jcl.Insert(big); err == nil {
		t.Fatal("oversized JSON insert accepted by daemon")
	}
	jcl2 := dialDaemon(t, d.addr)
	defer jcl2.Close()
	if err := jcl2.Ping(); err != nil {
		t.Fatalf("daemon dead after oversized requests: %v", err)
	}
}

// TestDaemonKillRecovery is the no-acknowledged-insert-lost gate: under
// -fsync always, inserts acknowledged over the wire must survive a hard
// SIGKILL (no shutdown handler runs) and be served after a restart from
// the same data directory.
func TestDaemonKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	args := []string{"-data-dir", dir, "-fsync", "always", "-index", "FLAT", "-metric", "l2", "-dim", "4", "-expected-rows", "1000"}

	d := startDaemon(t, bin, args...)
	cl := dialDaemon(t, d.addr)
	var vecs [][]float32
	for i := 0; i < 25; i++ {
		vecs = append(vecs, []float32{float32(i), float32(i * 2), float32(i * 3), 1})
	}
	ids, err := cl.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	// Hard crash: SIGKILL, no graceful shutdown path runs.
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	waitExit(t, d)

	d2 := startDaemon(t, bin, args...)
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM)
		waitExit(t, d2)
	}()
	cl2 := dialDaemon(t, d2.addr)
	defer cl2.Close()
	st, err := cl2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != int64(len(vecs)) {
		t.Fatalf("after SIGKILL restart: %d rows, want %d acknowledged inserts", st.Rows, len(vecs))
	}
	for i, v := range vecs {
		hits, err := cl2.Search(v, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) == 0 || hits[0].ID != ids[i] || hits[0].Dist != 0 {
			t.Fatalf("acknowledged insert %d lost: %+v", ids[i], hits)
		}
	}
}

// TestDaemonGracefulShutdown: under -fsync never nothing is synced per
// op, but SIGTERM's graceful shutdown (final WAL sync + snapshot) still
// preserves everything, growing tail included.
func TestDaemonGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and restarts a real daemon")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	args := []string{"-data-dir", dir, "-fsync", "never", "-index", "FLAT", "-metric", "l2", "-dim", "4", "-expected-rows", "1000"}

	d := startDaemon(t, bin, args...)
	cl := dialDaemon(t, d.addr)
	ids, err := cl.Insert([][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitExit(t, d)
	if !d.cmd.ProcessState.Success() {
		t.Fatalf("graceful shutdown exited with %v", d.cmd.ProcessState)
	}

	d2 := startDaemon(t, bin, args...)
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM)
		waitExit(t, d2)
	}()
	cl2 := dialDaemon(t, d2.addr)
	defer cl2.Close()
	hits, err := cl2.Search([]float32{5, 6, 7, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].ID != ids[1] || hits[0].Dist != 0 {
		t.Fatalf("graceful shutdown lost data: %+v", hits)
	}
}

// TestDaemonOnlineReshard: a data directory created at one shard count is
// resharded through the wire ("reconfigure" op) instead of at open. After
// a graceful restart the directory opens at the NEW count — and is
// refused at the old one, proving the generation actually committed.
func TestDaemonOnlineReshard(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and restarts a real daemon")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	base := []string{"-data-dir", dir, "-fsync", "always", "-index", "FLAT", "-metric", "l2", "-dim", "4", "-expected-rows", "1000"}

	d := startDaemon(t, bin, append([]string{"-shards", "1"}, base...)...)
	cl := dialDaemon(t, d.addr)
	var vecs [][]float32
	for i := 0; i < 40; i++ {
		vecs = append(vecs, []float32{float32(i), float32(i % 7), float32(i % 3), 1})
	}
	ids, err := cl.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}

	cfg, gen, err := cl.Config()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 {
		t.Fatalf("fresh daemon at generation %d", gen)
	}
	target := *cfg
	target.ShardCount = 4
	gen, err = cl.Reconfigure(target)
	if err != nil {
		t.Fatalf("online reshard failed: %v", err)
	}
	if gen != 1 {
		t.Fatalf("reshard produced generation %d, want 1", gen)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardCount != 4 || st.Rows != int64(len(vecs)) {
		t.Fatalf("after reshard: %d shards, %d rows", st.ShardCount, st.Rows)
	}
	cl.Close()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitExit(t, d)

	// The old shard count no longer matches the directory.
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-shards", "1"}, base...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("restart at the pre-reshard count succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "Reconfigure") {
		t.Fatalf("mismatch error does not point at online resharding: %q", out)
	}

	// The new one does, and every row survived the reshard + restart.
	d2 := startDaemon(t, bin, append([]string{"-shards", "4"}, base...)...)
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM)
		waitExit(t, d2)
	}()
	cl2 := dialDaemon(t, d2.addr)
	defer cl2.Close()
	st2, err := cl2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Rows != int64(len(vecs)) {
		t.Fatalf("restart after reshard holds %d rows, want %d", st2.Rows, len(vecs))
	}
	for i := 0; i < len(vecs); i += 8 {
		hits, err := cl2.Search(vecs[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) == 0 || hits[0].ID != ids[i] || hits[0].Dist != 0 {
			t.Fatalf("row %d lost across reshard: %+v", ids[i], hits)
		}
	}
}
