// Command vdmsd runs the vector data management engine as a network
// service (the access layer of the VDMS architecture): a live collection
// behind the newline-delimited JSON protocol of internal/server.
//
// The collection is sharded (-shards): inserts and deletes are routed to
// independently locked shards by id hash, searches scatter-gather across
// all of them deterministically, and with -data-dir every shard keeps its
// own write-ahead log and snapshots under <data-dir>/shard-<i>, described
// by a versioned manifest. A data directory is bound to the shard count
// it was created with; reopening it with a different -shards value is
// refused.
//
// With -data-dir the collection is durable: every insert/delete is
// write-ahead logged under the configured -fsync policy, the per-shard
// compactors checkpoint snapshots, startup recovers the previous state
// (replaying all shard WALs in parallel and truncating torn tails), and
// SIGTERM/SIGINT shut down gracefully — final WAL sync plus a full
// snapshot per shard — so a clean stop loses nothing under any policy.
// Without -data-dir the engine is memory-only, as before.
//
// Flags are validated up front: a value outside its documented range is a
// usage error (exit code 2) before any collection state is created.
//
// Usage:
//
//	vdmsd [-addr 127.0.0.1:7700] [-dim 128] [-metric angular]
//	      [-index HNSW] [-expected-rows 100000] [-shards 1]
//	      [-compact-ratio 0.2] [-compact-fanin 4] [-compact-workers 2]
//	      [-data-dir /var/lib/vdms] [-fsync always|batch|never]
//	      [-wal-group 64]
//
// Clients: see internal/server.Client, e.g.
//
//	cl, _ := server.Dial("127.0.0.1:7700")
//	ids, _ := cl.Insert(vectors)
//	hits, _ := cl.Search(query, 10)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/persist"
	"vdtuner/internal/server"
	"vdtuner/internal/vdms"
)

// usageError prints the message and the flag summary, then exits 2 — the
// conventional "bad invocation" code — before any engine state exists.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vdmsd: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	dim := flag.Int("dim", 128, "vector dimensionality (> 0)")
	metricName := flag.String("metric", "angular", "distance metric: l2, ip, angular")
	indexName := flag.String("index", "HNSW", "index type for sealed segments")
	expectedRows := flag.Int("expected-rows", 100000, "expected corpus size (> 0, scales segment sizing)")
	shards := flag.Int("shards", 1, "live-collection shard count, [1, 16]")
	compactRatio := flag.Float64("compact-ratio", 0, "sealed-segment tombstone ratio that triggers compaction, [0.05, 0.95] (0 = engine default)")
	compactFanIn := flag.Int("compact-fanin", 0, "max undersized segments merged per compaction, [2, 16] (0 = engine default)")
	compactWorkers := flag.Int("compact-workers", 0, "compactor worker-pool size, [1, 16] (0 = engine default)")
	dataDir := flag.String("data-dir", "", "data directory for durable persistence (empty = memory-only)")
	fsyncName := flag.String("fsync", "", "WAL fsync policy: never, batch, always (empty = engine default, batch)")
	walGroup := flag.Int("wal-group", 0, "group-commit batch size under the batch policy, [1, 1024] (0 = engine default)")
	flag.Parse()

	// Validate every flag before building anything: a typo'd knob should
	// be a crisp usage error, not a half-started collection (or a silently
	// absurd segment model).
	if *dim <= 0 {
		usageError("-dim must be positive, got %d", *dim)
	}
	if *expectedRows <= 0 {
		usageError("-expected-rows must be positive, got %d", *expectedRows)
	}
	if *shards < 1 || *shards > 16 {
		usageError("-shards %d outside [1, 16]", *shards)
	}
	if *compactRatio != 0 && (*compactRatio < 0.05 || *compactRatio > 0.95) {
		usageError("-compact-ratio %v outside [0.05, 0.95]", *compactRatio)
	}
	if *compactFanIn != 0 && (*compactFanIn < 2 || *compactFanIn > 16) {
		usageError("-compact-fanin %d outside [2, 16]", *compactFanIn)
	}
	if *compactWorkers != 0 && (*compactWorkers < 1 || *compactWorkers > 16) {
		usageError("-compact-workers %d outside [1, 16]", *compactWorkers)
	}
	if *walGroup != 0 && (*walGroup < 1 || *walGroup > 1024) {
		usageError("-wal-group %d outside [1, 1024]", *walGroup)
	}
	var metric linalg.Metric
	switch *metricName {
	case "l2":
		metric = linalg.L2
	case "ip":
		metric = linalg.InnerProduct
	case "angular":
		metric = linalg.Angular
	default:
		usageError("unknown metric %q (want l2, ip, or angular)", *metricName)
	}
	typ, err := index.ParseType(*indexName)
	if err != nil {
		usageError("%v", err)
	}

	cfg := vdms.DefaultConfig()
	cfg.IndexType = typ
	cfg.ShardCount = *shards
	if *compactRatio != 0 {
		cfg.CompactionTriggerRatio = *compactRatio
	}
	if *compactFanIn != 0 {
		cfg.CompactionMergeFanIn = *compactFanIn
	}
	if *compactWorkers != 0 {
		cfg.CompactionParallelism = *compactWorkers
	}
	if *fsyncName != "" {
		policy, err := persist.ParseSyncPolicy(*fsyncName)
		if err != nil {
			usageError("%v", err)
		}
		cfg.WALFsyncPolicy = int(policy)
	}
	if *walGroup != 0 {
		cfg.WALGroupCommit = *walGroup
	}

	// Register the shutdown handler before anything is externally
	// visible: a SIGTERM arriving right after the listening line must hit
	// the graceful path, not the runtime's default exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var coll *vdms.Collection
	if *dataDir != "" {
		coll, err = vdms.OpenDurable(*dataDir, cfg, metric, *dim, *expectedRows)
	} else {
		coll, err = vdms.NewCollection(cfg, metric, *dim, *expectedRows)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv, err := server.New(coll, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dataDir != "" {
		st := coll.Stats()
		fmt.Printf("vdmsd recovered %d rows (%d sealed segments, %d growing) across %d shards from %s\n",
			st.Rows, st.Sealed, st.GrowingRows, len(st.Shards), *dataDir)
	}
	fmt.Printf("vdmsd listening on %s (dim=%d, metric=%s, index=%v, shards=%d)\n",
		srv.Addr(), *dim, metric, typ, *shards)

	// Graceful shutdown on SIGTERM as well as interrupt: stop accepting,
	// then Close the collection — which waits out builds and compactions
	// and, when durable, syncs every shard's WAL and writes final
	// snapshots, so no acknowledged write (and no unsealed growing row)
	// is lost. A hard kill instead leaves whatever the fsync policy made
	// durable, which recovery replays on the next start.
	<-sig
	fmt.Println("shutting down")
	code := 0
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		code = 1
	}
	if err := coll.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		code = 1
	}
	os.Exit(code)
}
