// Command vdmsd runs the vector data management engine as a network
// service (the access layer of the VDMS architecture): a live collection
// behind the newline-delimited JSON protocol of internal/server.
//
// With -data-dir the collection is durable: every insert/delete is
// write-ahead logged under the configured -fsync policy, the compactor
// checkpoints snapshots, startup recovers the previous state (replaying
// the WAL and truncating a torn tail), and SIGTERM/SIGINT shut down
// gracefully — final WAL sync plus a full snapshot — so a clean stop
// loses nothing under any policy. Without -data-dir the engine is
// memory-only, as before.
//
// Usage:
//
//	vdmsd [-addr 127.0.0.1:7700] [-dim 128] [-metric angular]
//	      [-index HNSW] [-expected-rows 100000]
//	      [-compact-ratio 0.2] [-compact-fanin 4] [-compact-workers 2]
//	      [-data-dir /var/lib/vdms] [-fsync always|batch|never]
//	      [-wal-group 64]
//
// Clients: see internal/server.Client, e.g.
//
//	cl, _ := server.Dial("127.0.0.1:7700")
//	ids, _ := cl.Insert(vectors)
//	hits, _ := cl.Search(query, 10)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/persist"
	"vdtuner/internal/server"
	"vdtuner/internal/vdms"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	dim := flag.Int("dim", 128, "vector dimensionality")
	metricName := flag.String("metric", "angular", "distance metric: l2, ip, angular")
	indexName := flag.String("index", "HNSW", "index type for sealed segments")
	expectedRows := flag.Int("expected-rows", 100000, "expected corpus size (scales segment sizing)")
	compactRatio := flag.Float64("compact-ratio", 0, "sealed-segment tombstone ratio that triggers compaction, [0.05, 0.95] (0 = engine default)")
	compactFanIn := flag.Int("compact-fanin", 0, "max undersized segments merged per compaction, [2, 16] (0 = engine default)")
	compactWorkers := flag.Int("compact-workers", 0, "compactor worker-pool size, [1, 16] (0 = engine default)")
	dataDir := flag.String("data-dir", "", "data directory for durable persistence (empty = memory-only)")
	fsyncName := flag.String("fsync", "", "WAL fsync policy: never, batch, always (empty = engine default, batch)")
	walGroup := flag.Int("wal-group", 0, "group-commit batch size under the batch policy, [1, 1024] (0 = engine default)")
	flag.Parse()

	var metric linalg.Metric
	switch *metricName {
	case "l2":
		metric = linalg.L2
	case "ip":
		metric = linalg.InnerProduct
	case "angular":
		metric = linalg.Angular
	default:
		fmt.Fprintf(os.Stderr, "unknown metric %q\n", *metricName)
		os.Exit(2)
	}
	typ, err := index.ParseType(*indexName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := vdms.DefaultConfig()
	cfg.IndexType = typ
	if *compactRatio != 0 {
		cfg.CompactionTriggerRatio = *compactRatio
	}
	if *compactFanIn != 0 {
		cfg.CompactionMergeFanIn = *compactFanIn
	}
	if *compactWorkers != 0 {
		cfg.CompactionParallelism = *compactWorkers
	}
	if *fsyncName != "" {
		policy, err := persist.ParseSyncPolicy(*fsyncName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.WALFsyncPolicy = int(policy)
	}
	if *walGroup != 0 {
		cfg.WALGroupCommit = *walGroup
	}

	// Register the shutdown handler before anything is externally
	// visible: a SIGTERM arriving right after the listening line must hit
	// the graceful path, not the runtime's default exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var coll *vdms.Collection
	if *dataDir != "" {
		coll, err = vdms.OpenDurable(*dataDir, cfg, metric, *dim, *expectedRows)
	} else {
		coll, err = vdms.NewCollection(cfg, metric, *dim, *expectedRows)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv, err := server.New(coll, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dataDir != "" {
		st := coll.Stats()
		fmt.Printf("vdmsd recovered %d rows (%d sealed segments, %d growing) from %s\n",
			st.Rows, st.Sealed, st.GrowingRows, *dataDir)
	}
	fmt.Printf("vdmsd listening on %s (dim=%d, metric=%s, index=%v)\n",
		srv.Addr(), *dim, metric, typ)

	// Graceful shutdown on SIGTERM as well as interrupt: stop accepting,
	// then Close the collection — which waits out builds and compactions
	// and, when durable, syncs the WAL and writes a final snapshot, so no
	// acknowledged write (and no unsealed growing row) is lost. A hard
	// kill instead leaves whatever the fsync policy made durable, which
	// recovery replays on the next start.
	<-sig
	fmt.Println("shutting down")
	code := 0
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		code = 1
	}
	if err := coll.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		code = 1
	}
	os.Exit(code)
}
