// Command vdmsd runs the vector data management engine as a network
// service (the access layer of the VDMS architecture): a live collection
// behind the newline-delimited JSON protocol of internal/server.
//
// Usage:
//
//	vdmsd [-addr 127.0.0.1:7700] [-dim 128] [-metric angular]
//	      [-index HNSW] [-expected-rows 100000]
//	      [-compact-ratio 0.2] [-compact-fanin 4] [-compact-workers 2]
//
// Clients: see internal/server.Client, e.g.
//
//	cl, _ := server.Dial("127.0.0.1:7700")
//	ids, _ := cl.Insert(vectors)
//	hits, _ := cl.Search(query, 10)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/server"
	"vdtuner/internal/vdms"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	dim := flag.Int("dim", 128, "vector dimensionality")
	metricName := flag.String("metric", "angular", "distance metric: l2, ip, angular")
	indexName := flag.String("index", "HNSW", "index type for sealed segments")
	expectedRows := flag.Int("expected-rows", 100000, "expected corpus size (scales segment sizing)")
	compactRatio := flag.Float64("compact-ratio", 0, "sealed-segment tombstone ratio that triggers compaction, [0.05, 0.95] (0 = engine default)")
	compactFanIn := flag.Int("compact-fanin", 0, "max undersized segments merged per compaction, [2, 16] (0 = engine default)")
	compactWorkers := flag.Int("compact-workers", 0, "compactor worker-pool size, [1, 16] (0 = engine default)")
	flag.Parse()

	var metric linalg.Metric
	switch *metricName {
	case "l2":
		metric = linalg.L2
	case "ip":
		metric = linalg.InnerProduct
	case "angular":
		metric = linalg.Angular
	default:
		fmt.Fprintf(os.Stderr, "unknown metric %q\n", *metricName)
		os.Exit(2)
	}
	typ, err := index.ParseType(*indexName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := vdms.DefaultConfig()
	cfg.IndexType = typ
	if *compactRatio != 0 {
		cfg.CompactionTriggerRatio = *compactRatio
	}
	if *compactFanIn != 0 {
		cfg.CompactionMergeFanIn = *compactFanIn
	}
	if *compactWorkers != 0 {
		cfg.CompactionParallelism = *compactWorkers
	}
	coll, err := vdms.NewCollection(cfg, metric, *dim, *expectedRows)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv, err := server.New(coll, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("vdmsd listening on %s (dim=%d, metric=%s, index=%v)\n",
		srv.Addr(), *dim, metric, typ)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if err := coll.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
