// Command vdmsd runs the vector data management engine as a network
// service (the access layer of the VDMS architecture): a live collection
// behind internal/server's dual-protocol listener — newline-delimited
// JSON by default, and the length-prefixed binary pipelined protocol for
// any connection that opens with the binary preamble (server.DialBinary).
// Both protocols share one port; the access layer enforces a per-request
// byte limit (-max-request-bytes) and an idle-connection deadline
// (-idle-timeout) on every connection.
//
// The collection is sharded (-shards): inserts and deletes are routed to
// independently locked shards by id hash, searches scatter-gather across
// all of them deterministically, and with -data-dir every shard keeps its
// own write-ahead log and snapshots under <data-dir>/shard-<i>, described
// by a versioned, generation-stamped manifest. A data directory is bound
// to the shard count it was created with; reopening it with a different
// -shards value is refused — open it at its recorded count and reshard
// online through the "reconfigure" op instead.
//
// The running engine is reconfigurable without restart: the "reconfigure"
// op (server.Client.Reconfigure) applies a full configuration — hot knobs
// swap atomically, cold knobs (index type/build parameters, segment
// sizing, shard count) migrate in the background while the engine keeps
// serving. With -tune the daemon closes the loop itself: it windows the
// queries it serves, re-tunes when the workload drifts, and applies each
// winner through the same path (hot knobs only unless -tune-cold).
//
// With -data-dir the collection is durable: every insert/delete is
// write-ahead logged under the configured -fsync policy, the per-shard
// compactors checkpoint snapshots, startup recovers the previous state
// (replaying all shard WALs in parallel and truncating torn tails), and
// SIGTERM/SIGINT shut down gracefully — final WAL sync plus a full
// snapshot per shard — so a clean stop loses nothing under any policy.
// Without -data-dir the engine is memory-only, as before.
//
// Flags are validated up front: a value outside its documented range is a
// usage error (exit code 2) before any collection state is created.
//
// Usage:
//
//	vdmsd [-addr 127.0.0.1:7700] [-dim 128] [-metric angular]
//	      [-index HNSW] [-expected-rows 100000] [-shards 1]
//	      [-compact-ratio 0.2] [-compact-fanin 4] [-compact-workers 2]
//	      [-max-request-bytes 67108864] [-idle-timeout 5m]
//	      [-data-dir /var/lib/vdms] [-fsync always|batch|never]
//	      [-wal-group 64]
//	      [-tune] [-tune-interval 30s] [-tune-window 256]
//	      [-tune-iters 20] [-tune-cold]
//
// Clients: see internal/server.Client (JSON) and server.BinClient
// (binary, pipelined), e.g.
//
//	cl, _ := server.Dial("127.0.0.1:7700")
//	ids, _ := cl.Insert(vectors)
//	hits, _ := cl.Search(query, 10)
//
//	bc, _ := server.DialBinary("127.0.0.1:7700")
//	hits, _ = bc.Search(query, 10) // concurrent calls pipeline
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"vdtuner/internal/core"
	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/online"
	"vdtuner/internal/persist"
	"vdtuner/internal/server"
	"vdtuner/internal/vdms"
)

// usageError prints the message and the flag summary, then exits 2 — the
// conventional "bad invocation" code — before any engine state exists.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vdmsd: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	dim := flag.Int("dim", 128, "vector dimensionality (> 0)")
	metricName := flag.String("metric", "angular", "distance metric: l2, ip, angular")
	indexName := flag.String("index", "HNSW", "index type for sealed segments")
	expectedRows := flag.Int("expected-rows", 100000, "expected corpus size (> 0, scales segment sizing)")
	shards := flag.Int("shards", 1, "live-collection shard count, [1, 16]")
	compactRatio := flag.Float64("compact-ratio", 0, "sealed-segment tombstone ratio that triggers compaction, [0.05, 0.95] (0 = engine default)")
	compactFanIn := flag.Int("compact-fanin", 0, "max undersized segments merged per compaction, [2, 16] (0 = engine default)")
	compactWorkers := flag.Int("compact-workers", 0, "compactor worker-pool size, [1, 16] (0 = engine default)")
	maxRequestBytes := flag.Int("max-request-bytes", 64<<20, "per-request byte limit on both protocols (> 0); oversized requests are refused and the connection dropped")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "drop connections idle longer than this (0 disables)")
	dataDir := flag.String("data-dir", "", "data directory for durable persistence (empty = memory-only)")
	fsyncName := flag.String("fsync", "", "WAL fsync policy: never, batch, always (empty = engine default, batch)")
	walGroup := flag.Int("wal-group", 0, "group-commit batch size under the batch policy, [1, 1024] (0 = engine default)")
	tune := flag.Bool("tune", false, "run the in-process tuning daemon: window served queries, re-tune on drift, apply winners online")
	tuneInterval := flag.Duration("tune-interval", 30*time.Second, "how often the tuning daemon checks the query window")
	tuneWindow := flag.Int("tune-window", 256, "minimum served queries per tuning window")
	tuneIters := flag.Int("tune-iters", 20, "cold-start tuning budget (re-tunes use half)")
	tuneCold := flag.Bool("tune-cold", false, "let the tuning daemon apply cold knobs too (index type, segment sizing, shard count — triggers online migrations)")
	flag.Parse()

	// Validate every flag before building anything: a typo'd knob should
	// be a crisp usage error, not a half-started collection (or a silently
	// absurd segment model). Knobs that live in the engine configuration
	// are checked by the engine's own validator below — the same
	// vdms.ValidateConfig that guards Reconfigure and bounds the tuner's
	// search space — so the CLI can never accept a value the engine would
	// refuse (or vice versa).
	if *dim <= 0 {
		usageError("-dim must be positive, got %d", *dim)
	}
	if *expectedRows <= 0 {
		usageError("-expected-rows must be positive, got %d", *expectedRows)
	}
	if *tune && (*tuneWindow <= 0 || *tuneIters <= 0 || *tuneInterval <= 0) {
		usageError("-tune-window, -tune-iters and -tune-interval must be positive")
	}
	// ValidateConfig treats a zero shard count as "engine default", but on
	// the command line zero is a typo, not a request for the default — the
	// flag's own default is already 1. The range still comes from the
	// shared table.
	if r := vdms.SystemKnobRanges["shard_count"]; float64(*shards) < r.Min || float64(*shards) > r.Max {
		usageError("-shards %d outside [%v, %v]", *shards, r.Min, r.Max)
	}
	if *maxRequestBytes <= 0 {
		usageError("-max-request-bytes must be positive, got %d", *maxRequestBytes)
	}
	if *idleTimeout < 0 {
		usageError("-idle-timeout must be >= 0, got %s", *idleTimeout)
	}
	metric, err := linalg.ParseMetric(*metricName)
	if err != nil {
		usageError("%v", err)
	}
	typ, err := index.ParseType(*indexName)
	if err != nil {
		usageError("%v", err)
	}

	cfg := vdms.DefaultConfig()
	cfg.IndexType = typ
	cfg.ShardCount = *shards
	if *compactRatio != 0 {
		cfg.CompactionTriggerRatio = *compactRatio
	}
	if *compactFanIn != 0 {
		cfg.CompactionMergeFanIn = *compactFanIn
	}
	if *compactWorkers != 0 {
		cfg.CompactionParallelism = *compactWorkers
	}
	if *fsyncName != "" {
		policy, err := persist.ParseSyncPolicy(*fsyncName)
		if err != nil {
			usageError("%v", err)
		}
		cfg.WALFsyncPolicy = int(policy)
	}
	if *walGroup != 0 {
		cfg.WALGroupCommit = *walGroup
	}
	if err := vdms.ValidateConfig(cfg); err != nil {
		usageError("%v", err)
	}

	// Register the shutdown handler before anything is externally
	// visible: a SIGTERM arriving right after the listening line must hit
	// the graceful path, not the runtime's default exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var coll *vdms.Collection
	if *dataDir != "" {
		coll, err = vdms.OpenDurable(*dataDir, cfg, metric, *dim, *expectedRows)
	} else {
		coll, err = vdms.NewCollection(cfg, metric, *dim, *expectedRows)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv, err := server.NewWithOptions(coll, *addr, server.Options{
		MaxRequestBytes: *maxRequestBytes,
		IdleTimeout:     *idleTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dataDir != "" {
		st := coll.Stats()
		fmt.Printf("vdmsd recovered %d rows (%d sealed segments, %d growing) across %d shards from %s\n",
			st.Rows, st.Sealed, st.GrowingRows, len(st.Shards), *dataDir)
	}
	fmt.Printf("vdmsd listening on %s (dim=%d, metric=%s, index=%v, shards=%d)\n",
		srv.Addr(), *dim, metric, typ, *shards)

	// The tuning daemon: every -tune-interval, drain the window of queries
	// the server just served; once it holds enough, tune against a live
	// sample of the corpus and push the winner into the engine through the
	// same Reconfigure path a client would use.
	tuneDone := make(chan struct{})
	var tuneWG sync.WaitGroup
	if *tune {
		srv.EnableQueryLog(4 * *tuneWindow)
		daemon := online.NewDaemon(coll, online.DaemonOptions{
			Manager: online.ManagerOptions{
				Tuning:       core.Options{Seed: 1},
				InitialIters: *tuneIters,
			},
			ApplyColdChanges: *tuneCold,
		})
		fmt.Printf("tuning daemon watching query windows (interval=%s, window>=%d, cold=%v)\n",
			*tuneInterval, *tuneWindow, *tuneCold)
		tuneWG.Add(1)
		go func() {
			defer tuneWG.Done()
			ticker := time.NewTicker(*tuneInterval)
			defer ticker.Stop()
			for {
				select {
				case <-tuneDone:
					return
				case <-ticker.C:
				}
				qs := srv.TakeQueries()
				if len(qs) < *tuneWindow {
					continue
				}
				rep, err := daemon.ObserveWindow(qs)
				if err != nil {
					fmt.Fprintf(os.Stderr, "tuner: %v\n", err)
					continue
				}
				if rep.Applied {
					kind := "hot swap"
					if rep.Migrated {
						kind = "migration"
					}
					fmt.Printf("tuner applied generation %d via %s (drift=%.3f retuned=%v, recall=%.3f qps=%.0f)\n",
						rep.Generation, kind, rep.Window.DriftScore, rep.Window.Retuned,
						rep.Window.Result.Recall, rep.Window.Result.QPS)
				}
			}
		}()
	}

	// Graceful shutdown on SIGTERM as well as interrupt: stop accepting,
	// then Close the collection — which waits out builds and compactions
	// and, when durable, syncs every shard's WAL and writes final
	// snapshots, so no acknowledged write (and no unsealed growing row)
	// is lost. A hard kill instead leaves whatever the fsync policy made
	// durable, which recovery replays on the next start.
	<-sig
	fmt.Println("shutting down")
	close(tuneDone)
	tuneWG.Wait()
	code := 0
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		code = 1
	}
	if err := coll.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		code = 1
	}
	os.Exit(code)
}
