// Command vdtuner tunes the built-in vector data management engine on a
// named workload and reports the Pareto front and the recommended
// configuration.
//
// Usage:
//
//	vdtuner [-dataset glove] [-iters 60] [-scale 0.25] [-seed 42]
//	        [-recall-floor 0] [-cost-aware] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"vdtuner/internal/core"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "glove", "workload: glove, keyword, geo, arxiv, deep")
	iters := flag.Int("iters", 60, "tuning iterations (paper: 200)")
	scale := flag.Float64("scale", 0.25, "dataset scale factor")
	seed := flag.Int64("seed", 42, "random seed")
	recallFloor := flag.Float64("recall-floor", 0, "optimize speed subject to recall > floor (0 = balance both)")
	costAware := flag.Bool("cost-aware", false, "optimize cost-effectiveness (QP$) instead of QPS")
	saveKB := flag.String("save", "", "write the tuning knowledge base (JSON) to this path")
	loadKB := flag.String("load", "", "bootstrap from a knowledge base written by -save")
	verbose := flag.Bool("v", false, "print every iteration")
	flag.Parse()

	spec, err := pickDataset(*dataset, workload.Scale(*scale))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("generating %s (n=%d, dim=%d) ...\n", spec.Name, spec.N, spec.Dim)
	ds, err := workload.Load(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	def := vdms.Evaluate(ds, vdms.DefaultConfig())
	fmt.Printf("default config: QPS %.1f, recall %.4f, memory %.2f GiB-eq\n\n",
		def.QPS, def.Recall, core.MemGiB(def.MemoryBytes))

	var bootstrap []core.Observation
	if *loadKB != "" {
		bootstrap, err = core.LoadKnowledgeBase(*loadKB)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("bootstrapped %d observations from %s\n", len(bootstrap), *loadKB)
	}
	tn := core.New(core.Options{
		Seed:        *seed,
		RecallFloor: *recallFloor,
		CostAware:   *costAware,
		Bootstrap:   bootstrap,
	})
	for i := 0; i < *iters; i++ {
		cfg := tn.Next()
		res := vdms.Evaluate(ds, cfg)
		tn.Observe(cfg, res)
		if *verbose {
			status := fmt.Sprintf("QPS %8.1f recall %.4f", res.QPS, res.Recall)
			if res.Failed {
				status = "FAILED: " + res.FailReason
			}
			fmt.Printf("iter %3d  %-9s  %s\n", i+1, cfg.IndexType, status)
		}
	}

	if *saveKB != "" {
		if err := tn.SaveKnowledgeBase(*saveKB); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("knowledge base saved to %s\n", *saveKB)
	}

	front := tn.ParetoFront()
	sort.Slice(front, func(i, j int) bool { return front[i].ObjA > front[j].ObjA })
	fmt.Printf("\nPareto front (%d configurations):\n", len(front))
	objName := "QPS"
	if *costAware {
		objName = "QP$"
	}
	for _, o := range front {
		fmt.Printf("  %-9s %s %10.1f  recall %.4f  mem %.2f GiB-eq\n",
			o.Config.IndexType, objName, o.ObjA, o.Result.Recall, core.MemGiB(o.Result.MemoryBytes))
	}

	floor := *recallFloor
	if floor == 0 {
		floor = def.Recall - 1e-9
	}
	best, ok := tn.BestUnderRecall(floor)
	if !ok {
		fmt.Printf("\nno configuration found with recall > %.4f\n", floor)
		return
	}
	fmt.Printf("\nrecommended configuration (recall > %.4f):\n", floor)
	printConfig(best.Config)
	fmt.Printf("  -> %s %.1f (default %.1f), recall %.4f (default %.4f)\n",
		objName, best.ObjA, def.QPS, best.Result.Recall, def.Recall)
	fmt.Printf("remaining index types: %v, abandoned: %v\n", tn.Remaining(), tn.Abandoned())
}

func pickDataset(name string, scale workload.Scale) (workload.Spec, error) {
	switch name {
	case "glove":
		return workload.GloVeLike(scale), nil
	case "keyword":
		return workload.KeywordLike(scale), nil
	case "geo":
		return workload.GeoLike(scale), nil
	case "arxiv":
		return workload.ArxivLike(scale), nil
	case "deep":
		return workload.DeepImageLike(scale), nil
	default:
		return workload.Spec{}, fmt.Errorf("unknown dataset %q (want glove, keyword, geo, arxiv, deep)", name)
	}
}

func printConfig(cfg vdms.Config) {
	fmt.Printf("  index type        %v\n", cfg.IndexType)
	fmt.Printf("  build params      nlist=%d m=%d nbits=%d M=%d efConstruction=%d\n",
		cfg.Build.NList, cfg.Build.M, cfg.Build.NBits, cfg.Build.HNSWM, cfg.Build.EfConstruction)
	fmt.Printf("  search params     nprobe=%d ef=%d reorder_k=%d\n",
		cfg.Search.NProbe, cfg.Search.Ef, cfg.Search.ReorderK)
	fmt.Printf("  system params     maxSize=%.0f seal=%.2f graceful=%.0fms insertBuf=%.0f par=%d cache=%.2f flush=%.0fs\n",
		cfg.SegmentMaxSize, cfg.SealProportion, cfg.GracefulTime,
		cfg.InsertBufSize, cfg.Parallelism, cfg.CacheRatio, cfg.FlushInterval)
}
