// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	experiments [-exp all] [-scale 0.25] [-iters 60] [-seed 42]
//
// Experiment names: fig1 fig2 fig3 table4 fig6 fig7 fig8 fig9 fig10
// table5 fig11 fig12 fig13 table6 scalability holistic, or "all".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vdtuner/internal/bench"
	"vdtuner/internal/workload"
)

type experiment struct {
	name string
	run  func(io.Writer, bench.Options) error
}

func wrap[T any](f func(io.Writer, bench.Options) (T, error)) func(io.Writer, bench.Options) error {
	return func(w io.Writer, o bench.Options) error {
		_, err := f(w, o)
		return err
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma separated), or 'all'")
	scale := flag.Float64("scale", 0.25, "dataset scale factor (1.0 = full synthetic size)")
	iters := flag.Int("iters", 60, "tuning iterations per method (paper: 200)")
	seed := flag.Int64("seed", 42, "random seed")
	outDir := flag.String("out", "", "also write each experiment's output to <out>/<name>.txt")
	flag.Parse()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	opts := bench.Options{Scale: workload.Scale(*scale), Iters: *iters, Seed: *seed}

	experiments := []experiment{
		{"fig1", wrap(bench.Figure1)},
		{"fig2", wrap(bench.Figure2)},
		{"fig3", func(w io.Writer, o bench.Options) error {
			_, _, err := bench.Figure3(w, o)
			return err
		}},
		{"table4", wrap(bench.Table4)},
		{"fig6", wrap(bench.Figure6)},
		{"fig7", wrap(bench.Figure7)},
		{"fig8", wrap(bench.Figure8)},
		{"fig9", wrap(bench.Figure9)},
		{"fig10", wrap(bench.Figure10)},
		{"table5", wrap(bench.Table5)},
		{"fig11", wrap(bench.Figure11)},
		{"fig12", wrap(bench.Figure12)},
		{"fig13", wrap(bench.Figure13)},
		{"table6", wrap(bench.Table6)},
		{"scalability", wrap(bench.Scalability)},
		{"holistic", wrap(bench.HolisticVsIndividual)},
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ranAny := false
	for _, e := range experiments {
		if !want["all"] && !want[e.name] {
			continue
		}
		ranAny = true
		fmt.Printf("=== %s ===\n", e.name)
		var w io.Writer = os.Stdout
		var f *os.File
		if *outDir != "" {
			var err error
			f, err = os.Create(*outDir + "/" + e.name + ".txt")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			w = io.MultiWriter(os.Stdout, f)
		}
		t0 := time.Now()
		if err := e.run(w, opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		if f != nil {
			f.Close()
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.name, time.Since(t0).Seconds())
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known:", *exp)
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, " %s", e.name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
