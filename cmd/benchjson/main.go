// Command benchjson converts `go test -bench -benchmem` text output (read
// from stdin, possibly concatenated from several test binary runs) into a
// stable JSON document for benchmark-trajectory tracking. The Makefile's
// bench-json target pipes the root query-path benchmarks through it into
// BENCH_query.json, which is committed so future performance PRs have a
// baseline to diff against.
//
// With -baseline and -candidate it instead compares two such documents and
// fails (exit 1) when any benchmark present in both regressed by more than
// -tol percent ns/op — the `make bench-compare` regression fence.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// Entry is one benchmark measurement line.
type Entry struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric units (qps, p50-ns, recall, …)
	// keyed by unit name. Informational: the compare fence gates only on
	// ns/op, but the trajectory records them.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Note       string  `json:"note"`
	GoOS       string  `json:"goos,omitempty"`
	GoArch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

// benchLine matches one measurement. The name is non-greedy so a
// trailing -N GOMAXPROCS suffix is split off even when the benchmark name
// itself contains hyphens (sub-benchmarks like ServerWire/json-serial);
// everything after ns/op — B/op, allocs/op, and custom ReportMetric
// units — is captured for parseMetrics.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op((?:\s+[\d.e+-]+ \S+)*)\s*$`)

// metricPair is one "value unit" pair after ns/op.
var metricPair = regexp.MustCompile(`([\d.e+-]+) (\S+)`)

// parseMetrics fills the post-ns/op measurements: the standard -benchmem
// columns land in the fixed fields, custom ReportMetric units in Extra.
func parseMetrics(e *Entry, rest string) {
	for _, m := range metricPair.FindAllStringSubmatch(rest, -1) {
		val, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		switch m[2] {
		case "B/op":
			e.BytesPerOp = int64(val)
		case "allocs/op":
			e.AllocsPerOp = int64(val)
		default:
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[m[2]] = val
		}
	}
}

// readDoc loads one emitted document back.
func readDoc(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

// compare diffs candidate against baseline: benchmarks present in both are
// checked for ns/op regressions beyond tol percent; benchmarks only in one
// document are reported but never fail the gate (the suite is allowed to
// grow). Returns the number of regressions.
func compare(baseline, candidate *Doc, tol float64) int {
	base := make(map[string]Entry, len(baseline.Benchmarks))
	for _, e := range baseline.Benchmarks {
		base[e.Name] = e
	}
	regressions := 0
	for _, c := range candidate.Benchmarks {
		b, ok := base[c.Name]
		if !ok {
			fmt.Printf("  new     %-60s %14.0f ns/op\n", c.Name, c.NsPerOp)
			continue
		}
		delta := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := "ok"
		if delta > tol {
			status = "REGRESS"
			regressions++
		}
		fmt.Printf("  %-7s %-60s %14.0f -> %14.0f ns/op  (%+.1f%%)\n", status, c.Name, b.NsPerOp, c.NsPerOp, delta)
	}
	return regressions
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "committed baseline JSON; with -candidate, compare instead of convert")
	candidate := flag.String("candidate", "", "freshly measured JSON to compare against -baseline")
	tol := flag.Float64("tol", 15, "allowed ns/op regression in percent before the compare fails")
	flag.Parse()

	if *baseline != "" || *candidate != "" {
		if *baseline == "" || *candidate == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -baseline and -candidate must be given together")
			os.Exit(2)
		}
		bd, err := readDoc(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		cd, err := readDoc(*candidate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if n := compare(bd, cd, *tol); n > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% ns/op\n", n, *tol)
			os.Exit(1)
		}
		return
	}

	doc := Doc{Note: "query-path benchmark trajectory; regenerate with `make bench-json`"}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	meta := regexp.MustCompile(`^(goos|goarch|cpu): (.+)$`)
	for sc.Scan() {
		line := sc.Text()
		if m := meta.FindStringSubmatch(line); m != nil {
			switch m[1] {
			case "goos":
				doc.GoOS = m[2]
			case "goarch":
				doc.GoArch = m[2]
			case "cpu":
				doc.CPU = m[2]
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e := Entry{Name: m[1]}
		e.Procs, _ = strconv.Atoi(m[2])
		e.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		parseMetrics(&e, m[5])
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
