//go:build !race

package vdtuner

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
