// Root-level benchmarks for online reconfiguration: the cost of a
// hot-knob swap (and its impact on a concurrently running search path,
// which must be ~zero — shards read the published config generation once
// per operation, no extra locking), and the cost of a full online reshard
// migration (capture, rebuild at the new shard count, cutover).
package vdtuner

import (
	"testing"

	"vdtuner/internal/linalg"
	"vdtuner/internal/vdms"
)

// reconfigCollection builds a FLAT live collection pre-loaded with rows
// vectors: exact segments keep the measurements free of index-build and
// recall noise.
func reconfigCollection(tb testing.TB, shards, rows, dim int) *vdms.Collection {
	tb.Helper()
	coll, err := vdms.NewCollection(shardedConfig(shards), linalg.L2, dim, rows)
	if err != nil {
		tb.Fatal(err)
	}
	vecs := randomVectors(rows, dim, 1)
	for lo := 0; lo < len(vecs); lo += 512 {
		hi := lo + 512
		if hi > len(vecs) {
			hi = len(vecs)
		}
		if _, err := coll.Insert(vecs[lo:hi]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := coll.Flush(); err != nil {
		tb.Fatal(err)
	}
	return coll
}

// BenchmarkReconfigureHot measures hot-knob application. "swap" is the
// latency of one Reconfigure that only touches hot knobs; "search-static"
// vs "search-swapping" compare batched-search latency without and with a
// hot swap before every batch — the two must be near-identical, which is
// the "hot swaps cost the search path nothing" contract in numbers.
func BenchmarkReconfigureHot(b *testing.B) {
	const (
		dim  = 32
		rows = 8192
	)
	searchBatch := func(b *testing.B, coll *vdms.Collection, swap func(i int)) {
		b.Helper()
		queries := randomVectors(64, dim, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if swap != nil {
				swap(i)
			}
			if _, err := coll.SearchBatch(queries, 10, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("swap", func(b *testing.B) {
		coll := reconfigCollection(b, 2, rows, dim)
		defer coll.Close()
		cfgA := coll.Config()
		cfgB := cfgA
		cfgB.GracefulTime = cfgA.GracefulTime + 1 // hot knob: no migration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := cfgA
			if i%2 == 0 {
				cfg = cfgB
			}
			if _, err := coll.Reconfigure(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("search=static", func(b *testing.B) {
		coll := reconfigCollection(b, 2, rows, dim)
		defer coll.Close()
		searchBatch(b, coll, nil)
	})
	b.Run("search=swapping", func(b *testing.B) {
		coll := reconfigCollection(b, 2, rows, dim)
		defer coll.Close()
		cfgA := coll.Config()
		cfgB := cfgA
		cfgB.GracefulTime = cfgA.GracefulTime + 1
		searchBatch(b, coll, func(i int) {
			cfg := cfgA
			if i%2 == 0 {
				cfg = cfgB
			}
			if _, err := coll.Reconfigure(cfg); err != nil {
				b.Fatal(err)
			}
		})
	})
}

// BenchmarkMigrateReshard measures one full online reshard of a loaded
// collection — capture, parallel rebuild at the new shard count, delta
// cutover — alternating 1→4→1 so every iteration migrates.
func BenchmarkMigrateReshard(b *testing.B) {
	const (
		dim  = 32
		rows = 16384
	)
	coll := reconfigCollection(b, 1, rows, dim)
	defer coll.Close()
	cfg1 := coll.Config()
	cfg4 := cfg1
	cfg4.ShardCount = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := cfg4
		if i%2 == 1 {
			target = cfg1
		}
		if _, err := coll.Reconfigure(target); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := coll.Stats().Rows; got != rows {
		b.Fatalf("reshard churn lost rows: %d of %d", got, rows)
	}
}
