module vdtuner

go 1.21
