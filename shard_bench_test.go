// Root-level benchmarks and checks for the sharded live collection: the
// write-scalability trajectory (concurrent inserts against 1, 4, and 8
// shards) and scatter-gather batched search across shard counts. The
// sharding contract (see internal/vdms) is that shard_count changes only
// wall-clock behavior on exact segments — search results are
// bit-identical — which the vdms package tests assert; here the speedup
// itself is measured, and gated on machines with enough cores.
package vdtuner

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/vdms"
)

// shardedConfig is the insert-path benchmark configuration: FLAT segments
// (no index-build noise) and a seal threshold the workloads stay under,
// so the measurement is the contended insert path itself — id assignment,
// routing, arena copies, per-shard locking — not background builds.
func shardedConfig(shards int) vdms.Config {
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.Flat
	cfg.ShardCount = shards
	return cfg
}

// insertBatches pre-generates the batches one inserter goroutine pushes.
func insertBatches(n, batch, dim int, seed int64) [][][]float32 {
	vecs := randomVectors(n*batch, dim, seed)
	out := make([][][]float32, n)
	for i := range out {
		out[i] = vecs[i*batch : (i+1)*batch]
	}
	return out
}

// randomVectors is a tiny local generator (the workload package's
// datasets are query/truth-shaped; insert benchmarks just need rows).
func randomVectors(n, dim int, seed int64) [][]float32 {
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	next := func() float32 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float32(int32(state)) / (1 << 31)
	}
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for d := range v {
			v[d] = next()
		}
		out[i] = v
	}
	return out
}

// timeConcurrentInsert drives goroutines × batches concurrent inserts
// into a fresh collection with the given shard count and returns the
// elapsed wall time.
func timeConcurrentInsert(tb testing.TB, shards, goroutines, batches, batch, dim int) time.Duration {
	tb.Helper()
	// expectedRows keeps every shard's seal threshold above the rows it
	// will receive: the measurement is pure insert-path contention.
	coll, err := vdms.NewCollection(shardedConfig(shards), linalg.L2, dim, 200000)
	if err != nil {
		tb.Fatal(err)
	}
	defer coll.Close()
	work := make([][][][]float32, goroutines)
	for g := range work {
		work[g] = insertBatches(batches, batch, dim, int64(g+1))
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, b := range work[g] {
				if _, err := coll.Insert(b); err != nil {
					tb.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	return time.Since(start)
}

// TestShardedInsertSpeedup is the write-scalability acceptance gate:
// with 4 shards, 4 concurrent inserters must complete the same workload
// at least 2x faster than against the single-shard (single-lock)
// collection. The timing assertion is skipped under -race and below 4
// cores, where the speedup is not observable; correctness (identical
// results across shard counts) is asserted in internal/vdms regardless.
func TestShardedInsertSpeedup(t *testing.T) {
	const goroutines, batches, batch, dim = 4, 120, 64, 128
	cpus := runtime.GOMAXPROCS(0)
	time1 := timeConcurrentInsert(t, 1, goroutines, batches, batch, dim)
	time4 := timeConcurrentInsert(t, 4, goroutines, batches, batch, dim)
	t.Logf("shards=1: %v, shards=4: %v (%.2fx) on %d cores",
		time1, time4, float64(time1)/float64(time4), cpus)
	if raceEnabled || cpus < 4 {
		t.Skipf("timing assertion skipped (race=%v, cpus=%d)", raceEnabled, cpus)
	}
	if float64(time1) < 2*float64(time4) {
		t.Errorf("sharded insert speedup %.2fx < 2x on %d cores", float64(time1)/float64(time4), cpus)
	}
}

// TestShardedInsertScalesToEight guards the insert anomaly fixed in the
// scatter-gather PR: shards=8 must not be slower than shards=4 on the
// same concurrent workload (the old numbers showed 10.5ms vs 3.1ms — a
// first-operation artifact of unwarmed per-shard arenas under
// -benchtime=1x, which warmed timing removes). Gated like the speedup
// test: timing asserted only without -race on 4+ cores.
func TestShardedInsertScalesToEight(t *testing.T) {
	const goroutines, batches, batch, dim = 4, 120, 64, 128
	cpus := runtime.GOMAXPROCS(0)
	time4 := timeConcurrentInsert(t, 4, goroutines, batches, batch, dim)
	time8 := timeConcurrentInsert(t, 8, goroutines, batches, batch, dim)
	t.Logf("shards=4: %v, shards=8: %v (%.2fx) on %d cores",
		time4, time8, float64(time4)/float64(time8), cpus)
	if raceEnabled || cpus < 4 {
		t.Skipf("timing assertion skipped (race=%v, cpus=%d)", raceEnabled, cpus)
	}
	// Allow measurement noise but catch the 3x regression class.
	if float64(time8) > 1.5*float64(time4) {
		t.Errorf("shards=8 insert took %v, shards=4 %v: write path no longer scales past 4 shards", time8, time4)
	}
}

// timeSearchBatch builds a FLAT collection at the given shard count and
// times rounds repetitions of a batched search over it. FLAT keeps the
// total scan work shard-invariant (every query reads every row exactly
// once however the rows are partitioned), so the comparison isolates the
// scatter-gather machinery itself.
func timeSearchBatch(tb testing.TB, shards, n, dim, k, queries, rounds int) time.Duration {
	tb.Helper()
	coll, err := vdms.NewCollection(shardedConfig(shards), linalg.L2, dim, n)
	if err != nil {
		tb.Fatal(err)
	}
	defer coll.Close()
	if _, err := coll.Insert(randomVectors(n, dim, 9)); err != nil {
		tb.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		tb.Fatal(err)
	}
	qs := randomVectors(queries, dim, 10)
	if _, err := coll.SearchBatch(qs, k, nil); err != nil { // warm scratch pools
		tb.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := coll.SearchBatch(qs, k, nil); err != nil {
			tb.Fatal(err)
		}
	}
	return time.Since(start)
}

// TestShardedSearchSpeedup is the read-side analog of
// TestShardedInsertSpeedup: with 4+ cores, the (query × shard) probe grid
// must answer a batched search over 4 shards at least as fast as over 1 —
// per-shard probes parallelize where the single shard is one serial scan.
// The timing assertion is skipped under -race and below 4 cores, where
// the fan-out cannot beat the sequential path; bit-identity of the
// results across shard counts is asserted in internal/vdms regardless.
func TestShardedSearchSpeedup(t *testing.T) {
	const n, dim, k, queries, rounds = 8000, 32, 10, 64, 8
	cpus := runtime.GOMAXPROCS(0)
	time1 := timeSearchBatch(t, 1, n, dim, k, queries, rounds)
	time4 := timeSearchBatch(t, 4, n, dim, k, queries, rounds)
	t.Logf("shards=1: %v, shards=4: %v (%.2fx) on %d cores",
		time1, time4, float64(time1)/float64(time4), cpus)
	if raceEnabled || cpus < 4 {
		t.Skipf("timing assertion skipped (race=%v, cpus=%d)", raceEnabled, cpus)
	}
	if time4 > time1 {
		t.Errorf("sharded SearchBatch slower than single shard: shards=4 %v > shards=1 %v on %d cores", time4, time1, cpus)
	}
}

// BenchmarkShardedInsert measures concurrent insert throughput against 1,
// 4, and 8 shards: RunParallel goroutines each push 64-row batches, so
// the contended path (router fan-out, per-shard lock + arena copy) is
// what scales. A warmup insert lands every shard's growing arena before
// the clock starts — without it the first measured op pays the lazy
// multi-megabyte arena allocations, which at -benchtime=1x once read as a
// shards=8 "anomaly". bench-json records rows/sec per shard count — the
// write-scalability trajectory.
func BenchmarkShardedInsert(b *testing.B) {
	const batch, dim = 64, 128
	for _, shards := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4", 8: "shards=8"}[shards], func(b *testing.B) {
			b.ReportAllocs()
			coll, err := vdms.NewCollection(shardedConfig(shards), linalg.L2, dim, 200000)
			if err != nil {
				b.Fatal(err)
			}
			defer coll.Close()
			pool := insertBatches(64, batch, dim, 7)
			if _, err := coll.Insert(pool[0]); err != nil { // warm the arenas
				b.Fatal(err)
			}
			b.SetBytes(int64(batch * dim * 4))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := coll.Insert(pool[i%len(pool)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// benchSearchBatch is the shared body of the sharded search benchmarks:
// build, load, flush, then time repeated SearchBatch calls.
func benchSearchBatch(b *testing.B, cfg vdms.Config, n, dim, k, queries int) {
	b.ReportAllocs()
	coll, err := vdms.NewCollection(cfg, linalg.L2, dim, n)
	if err != nil {
		b.Fatal(err)
	}
	defer coll.Close()
	if _, err := coll.Insert(randomVectors(n, dim, 9)); err != nil {
		b.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		b.Fatal(err)
	}
	qs := randomVectors(queries, dim, 10)
	if _, err := coll.SearchBatch(qs, k, nil); err != nil { // warm scratch pools
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coll.SearchBatch(qs, k, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedSearchBatch measures the scatter-gather batched read
// path across shard counts on exact (FLAT) segments, where the total scan
// work is shard-invariant — every query reads every row once however the
// rows are partitioned. What the benchmark exposes is therefore the
// router itself: grid scheduling, pooled per-shard probes, and the
// fixed-order merge. With the zero-alloc grid the sharded runs must match
// or beat shards=1 (shard-major cell order keeps each shard's smaller
// arena cache-resident across the whole batch), which bench-json records.
// The corpus is sized past the last-level cache (64000×32×4B = 8MB), the
// regime where a 64-query batch streaming the whole arena per query
// thrashes but per-shard slices stay resident.
func BenchmarkShardedSearchBatch(b *testing.B) {
	const n, dim, k, queries = 64000, 32, 10, 64
	for _, shards := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4", 8: "shards=8"}[shards], func(b *testing.B) {
			benchSearchBatch(b, shardedConfig(shards), n, dim, k, queries)
		})
	}
}

// BenchmarkShardedSearchBatchHNSW is the indexed variant: sharding an
// HNSW collection multiplies beam-search work (each of N shards runs its
// own ef-wide beam over a smaller graph — read amplification inherent to
// partitioned graph indexes, not router overhead), so these numbers
// document the read cost of the shard_count knob the tuner trades against
// write scalability. Smaller corpus than the FLAT benchmark: graph builds
// are expensive and the read amplification shows at any scale.
func BenchmarkShardedSearchBatchHNSW(b *testing.B) {
	const n, dim, k, queries = 8000, 32, 10, 64
	for _, shards := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4", 8: "shards=8"}[shards], func(b *testing.B) {
			cfg := shardedConfig(shards)
			cfg.IndexType = index.HNSW
			cfg.Build.HNSWM = 12
			cfg.Build.EfConstruction = 80
			cfg.Search.Ef = 64
			benchSearchBatch(b, cfg, n, dim, k, queries)
		})
	}
}

// benchSearchBatchQuantized wraps benchSearchBatch's shape with the
// quantized-path acceptance checks run once before the clock starts:
// the batched results must be bit-identical to per-query Searches (the
// multi-query kernels change wall-clock only, never results), and
// recall@k against an exact scan of the corpus must clear the given
// floor (the byte-domain kernels must not silently degrade quality).
// The measured recall is reported as a benchmark metric.
func benchSearchBatchQuantized(b *testing.B, cfg vdms.Config, n, dim, k, queries int, recallFloor float64) {
	b.ReportAllocs()
	coll, err := vdms.NewCollection(cfg, linalg.L2, dim, n)
	if err != nil {
		b.Fatal(err)
	}
	defer coll.Close()
	vecs := randomVectors(n, dim, 9)
	ids, err := coll.Insert(vecs)
	if err != nil {
		b.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		b.Fatal(err)
	}
	qs := randomVectors(queries, dim, 10)
	batch, err := coll.SearchBatch(qs, k, nil) // also warms scratch pools
	if err != nil {
		b.Fatal(err)
	}
	hits := 0
	for qi, q := range qs {
		seq, err := coll.Search(q, k, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(seq) != len(batch[qi]) {
			b.Fatalf("query %d: batch returned %d results, sequential %d", qi, len(batch[qi]), len(seq))
		}
		for i := range seq {
			if seq[i] != batch[qi][i] {
				b.Fatalf("query %d result %d: batch %+v != sequential %+v", qi, i, batch[qi][i], seq[i])
			}
		}
		truth := linalg.NewTopK(k)
		for ri, v := range vecs {
			truth.Push(ids[ri], linalg.Distance(linalg.L2, q, v))
		}
		exact := make(map[int64]bool, k)
		for _, nb := range truth.Results() {
			exact[nb.ID] = true
		}
		for _, nb := range batch[qi] {
			if exact[nb.ID] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(len(qs)*k)
	if recall < recallFloor {
		b.Fatalf("recall@%d = %.3f below floor %.2f", k, recall, recallFloor)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coll.SearchBatch(qs, k, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(recall, "recall")
}

// BenchmarkShardedSearchBatchSQ8 is the quantized variant of the FLAT
// sharded read benchmark: the same out-of-cache 64000×32 corpus behind
// IVF_SQ8 segments, so the measured path is the byte-domain posting-list
// streaming — coarse probe, cell→prober inversion, and the multi-query
// SQ8 decode kernels sharing each probed cell's code range across the
// query tile. Recall and batch≡sequential bit-identity are asserted
// before the clock starts.
func BenchmarkShardedSearchBatchSQ8(b *testing.B) {
	const n, dim, k, queries = 64000, 32, 10, 64
	for _, shards := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4", 8: "shards=8"}[shards], func(b *testing.B) {
			cfg := shardedConfig(shards)
			cfg.IndexType = index.IVFSQ8
			cfg.Build.NList = 64
			cfg.Search.NProbe = 16
			benchSearchBatchQuantized(b, cfg, n, dim, k, queries, 0.60)
		})
	}
}

// BenchmarkShardedSearchBatchPQ is the IVF_PQ analog: the scanned arena
// is the packed 1-byte code matrix (m=8 codes per row — 16x smaller than
// the raw vectors), so the measured path is per-query ADC table
// construction plus the multi-query ADC scan making one pass over each
// probed cell's codes for the whole tile.
func BenchmarkShardedSearchBatchPQ(b *testing.B) {
	const n, dim, k, queries = 64000, 32, 10, 64
	for _, shards := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4", 8: "shards=8"}[shards], func(b *testing.B) {
			cfg := shardedConfig(shards)
			cfg.IndexType = index.IVFPQ
			cfg.Build.NList = 64
			cfg.Build.M = 8
			cfg.Build.NBits = 8
			cfg.Search.NProbe = 16
			benchSearchBatchQuantized(b, cfg, n, dim, k, queries, 0.35)
		})
	}
}
