// Root-level benchmarks and checks for the sharded live collection: the
// write-scalability trajectory (concurrent inserts against 1, 4, and 8
// shards) and scatter-gather batched search across shard counts. The
// sharding contract (see internal/vdms) is that shard_count changes only
// wall-clock behavior on exact segments — search results are
// bit-identical — which the vdms package tests assert; here the speedup
// itself is measured, and gated on machines with enough cores.
package vdtuner

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/vdms"
)

// shardedConfig is the insert-path benchmark configuration: FLAT segments
// (no index-build noise) and a seal threshold the workloads stay under,
// so the measurement is the contended insert path itself — id assignment,
// routing, arena copies, per-shard locking — not background builds.
func shardedConfig(shards int) vdms.Config {
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.Flat
	cfg.ShardCount = shards
	return cfg
}

// insertBatches pre-generates the batches one inserter goroutine pushes.
func insertBatches(n, batch, dim int, seed int64) [][][]float32 {
	vecs := randomVectors(n*batch, dim, seed)
	out := make([][][]float32, n)
	for i := range out {
		out[i] = vecs[i*batch : (i+1)*batch]
	}
	return out
}

// randomVectors is a tiny local generator (the workload package's
// datasets are query/truth-shaped; insert benchmarks just need rows).
func randomVectors(n, dim int, seed int64) [][]float32 {
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	next := func() float32 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float32(int32(state)) / (1 << 31)
	}
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for d := range v {
			v[d] = next()
		}
		out[i] = v
	}
	return out
}

// timeConcurrentInsert drives goroutines × batches concurrent inserts
// into a fresh collection with the given shard count and returns the
// elapsed wall time.
func timeConcurrentInsert(tb testing.TB, shards, goroutines, batches, batch, dim int) time.Duration {
	tb.Helper()
	// expectedRows keeps every shard's seal threshold above the rows it
	// will receive: the measurement is pure insert-path contention.
	coll, err := vdms.NewCollection(shardedConfig(shards), linalg.L2, dim, 200000)
	if err != nil {
		tb.Fatal(err)
	}
	defer coll.Close()
	work := make([][][][]float32, goroutines)
	for g := range work {
		work[g] = insertBatches(batches, batch, dim, int64(g+1))
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, b := range work[g] {
				if _, err := coll.Insert(b); err != nil {
					tb.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	return time.Since(start)
}

// TestShardedInsertSpeedup is the write-scalability acceptance gate:
// with 4 shards, 4 concurrent inserters must complete the same workload
// at least 2x faster than against the single-shard (single-lock)
// collection. The timing assertion is skipped under -race and below 4
// cores, where the speedup is not observable; correctness (identical
// results across shard counts) is asserted in internal/vdms regardless.
func TestShardedInsertSpeedup(t *testing.T) {
	const goroutines, batches, batch, dim = 4, 120, 64, 128
	cpus := runtime.GOMAXPROCS(0)
	time1 := timeConcurrentInsert(t, 1, goroutines, batches, batch, dim)
	time4 := timeConcurrentInsert(t, 4, goroutines, batches, batch, dim)
	t.Logf("shards=1: %v, shards=4: %v (%.2fx) on %d cores",
		time1, time4, float64(time1)/float64(time4), cpus)
	if raceEnabled || cpus < 4 {
		t.Skipf("timing assertion skipped (race=%v, cpus=%d)", raceEnabled, cpus)
	}
	if float64(time1) < 2*float64(time4) {
		t.Errorf("sharded insert speedup %.2fx < 2x on %d cores", float64(time1)/float64(time4), cpus)
	}
}

// BenchmarkShardedInsert measures concurrent insert throughput against 1,
// 4, and 8 shards: RunParallel goroutines each push 64-row batches, so
// the contended path (router fan-out, per-shard lock + arena copy) is
// what scales. bench-json records rows/sec per shard count — the
// write-scalability trajectory.
func BenchmarkShardedInsert(b *testing.B) {
	const batch, dim = 64, 128
	for _, shards := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4", 8: "shards=8"}[shards], func(b *testing.B) {
			b.ReportAllocs()
			coll, err := vdms.NewCollection(shardedConfig(shards), linalg.L2, dim, 200000)
			if err != nil {
				b.Fatal(err)
			}
			defer coll.Close()
			pool := insertBatches(64, batch, dim, 7)
			b.SetBytes(int64(batch * dim * 4))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := coll.Insert(pool[i%len(pool)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkShardedSearchBatch measures scatter-gather batched search
// across shard counts on an indexed (HNSW) collection: every query fans
// out to every shard and the per-shard top-k lists merge in fixed shard
// order. More shards mean smaller segments per shard; the benchmark
// records how the read path pays for write scalability.
func BenchmarkShardedSearchBatch(b *testing.B) {
	const n, dim, k, queries = 8000, 32, 10, 64
	for _, shards := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4", 8: "shards=8"}[shards], func(b *testing.B) {
			b.ReportAllocs()
			cfg := shardedConfig(shards)
			cfg.IndexType = index.HNSW
			cfg.Build.HNSWM = 12
			cfg.Build.EfConstruction = 80
			cfg.Search.Ef = 64
			coll, err := vdms.NewCollection(cfg, linalg.L2, dim, n)
			if err != nil {
				b.Fatal(err)
			}
			defer coll.Close()
			if _, err := coll.Insert(randomVectors(n, dim, 9)); err != nil {
				b.Fatal(err)
			}
			if err := coll.Flush(); err != nil {
				b.Fatal(err)
			}
			qs := randomVectors(queries, dim, 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coll.SearchBatch(qs, k, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
