// Costaware: optimize cost-effectiveness (QP$ — queries per dollar, with
// memory as the cost driver) instead of raw QPS, and compare the memory
// footprints the two objectives steer toward (paper §V-E / Figure 13).
//
//	go run ./examples/costaware
package main

import (
	"fmt"
	"log"

	"vdtuner/internal/core"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

func main() {
	ds, err := workload.Load(workload.GeoLike(0.3))
	if err != nil {
		log.Fatal(err)
	}
	const iters = 30

	costTuner := core.New(core.Options{Seed: 21, CostAware: true})
	speedTuner := core.New(core.Options{Seed: 21})
	for i := 0; i < iters; i++ {
		cfg := costTuner.Next()
		costTuner.Observe(cfg, vdms.Evaluate(ds, cfg))
		cfg = speedTuner.Next()
		speedTuner.Observe(cfg, vdms.Evaluate(ds, cfg))
	}

	fmt.Println("objective        best config             QPS      QP$   mem(GiB-eq)")
	show := func(label string, tn *core.Tuner) {
		best, ok := tn.BestUnderRecall(0.8)
		if !ok {
			best, ok = tn.BestUnderRecall(0)
		}
		if !ok {
			fmt.Printf("%-16s nothing feasible\n", label)
			return
		}
		r := best.Result
		fmt.Printf("%-16s %-9s recall %.3f %8.1f %8.2f %12.2f\n",
			label, best.Config.IndexType, r.Recall, r.QPS,
			core.CostEffectiveness(r), core.MemGiB(r.MemoryBytes))
	}
	show("maximize QP$", costTuner)
	show("maximize QPS", speedTuner)

	// Compare the average sampled footprint: the cost-aware objective
	// should steer toward leaner configurations overall.
	fmt.Printf("mean sampled memory: QP$ run %.2f GiB-eq, QPS run %.2f GiB-eq\n",
		meanMem(costTuner), meanMem(speedTuner))
}

func meanMem(tn *core.Tuner) float64 {
	var sum float64
	var n int
	for _, o := range tn.Observations() {
		if o.Result.Failed {
			continue
		}
		sum += core.MemGiB(o.Result.MemoryBytes)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
