// Quickstart: tune the vector engine on a small clustered workload and
// compare the recommended configuration against the default.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vdtuner/internal/core"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

func main() {
	// 1. Build a workload: stored vectors, queries, exact ground truth.
	ds, err := workload.Load(workload.Spec{
		Name: "quickstart", N: 2000, NQ: 30, Dim: 48, K: 10,
		Clusters: 16, ClusterStd: 0.4, Correlated: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Measure the default configuration (AUTOINDEX + stock system
	// parameters) as the baseline.
	def := vdms.Evaluate(ds, vdms.DefaultConfig())
	fmt.Printf("default:  QPS %8.1f  recall %.4f\n", def.QPS, def.Recall)

	// 3. Run VDTuner for 40 iterations: it polls index types, learns a
	// holistic surrogate, and abandons weak types along the way.
	tuner := core.New(core.Options{Seed: 7})
	for i := 0; i < 40; i++ {
		cfg := tuner.Next()
		res := vdms.Evaluate(ds, cfg)
		tuner.Observe(cfg, res)
	}

	// 4. Pick the fastest configuration that keeps the default recall.
	best, ok := tuner.BestUnderRecall(def.Recall - 1e-9)
	if !ok {
		log.Fatal("no configuration matched the default recall level")
	}
	fmt.Printf("tuned:    QPS %8.1f  recall %.4f  (index %v)\n",
		best.Result.QPS, best.Result.Recall, best.Config.IndexType)
	fmt.Printf("speedup:  %+.1f%% without sacrificing recall\n",
		(best.Result.QPS-def.QPS)/def.QPS*100)
	fmt.Printf("index types still in play: %v (abandoned %v)\n",
		tuner.Remaining(), tuner.Abandoned())
}
