// Comparison: race VDTuner against the paper's four baselines (Random,
// OpenTuner, OtterTune, qEHVI) on one workload and report the best QPS
// each found under several recall floors (a miniature Figure 6).
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"vdtuner/internal/baselines"
	"vdtuner/internal/core"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

// method is the common tuning interface.
type method interface {
	Name() string
	Next() vdms.Config
	Observe(cfg vdms.Config, res vdms.Result)
}

func main() {
	ds, err := workload.Load(workload.GloVeLike(0.2))
	if err != nil {
		log.Fatal(err)
	}
	const iters = 30
	const seed = 33

	methods := []method{
		core.New(core.Options{Seed: seed}),
		baselines.NewRandom(seed),
		baselines.NewOpenTuner(seed),
		baselines.NewOtterTune(seed, 10),
		baselines.NewQEHVI(seed, 10),
	}
	floors := []float64{0.85, 0.9, 0.95}

	// best[m][f] is the best QPS method m found with recall > floor f.
	best := make([][]float64, len(methods))
	for mi, m := range methods {
		best[mi] = make([]float64, len(floors))
		for i := 0; i < iters; i++ {
			cfg := m.Next()
			res := vdms.Evaluate(ds, cfg)
			m.Observe(cfg, res)
			if res.Failed {
				continue
			}
			for fi, floor := range floors {
				if res.Recall > floor && res.QPS > best[mi][fi] {
					best[mi][fi] = res.QPS
				}
			}
		}
	}

	fmt.Printf("best QPS after %d iterations on %s:\n", iters, ds.Name)
	fmt.Printf("%-12s", "method")
	for _, f := range floors {
		fmt.Printf("  recall>%.2f", f)
	}
	fmt.Println()
	for mi, m := range methods {
		fmt.Printf("%-12s", m.Name())
		for fi := range floors {
			if best[mi][fi] > 0 {
				fmt.Printf("  %11.1f", best[mi][fi])
			} else {
				fmt.Printf("  %11s", "-")
			}
		}
		fmt.Println()
	}
}
