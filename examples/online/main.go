// Online: the paper's future-work extension — serve a stream of workload
// windows, detect drift, and re-tune (warm-started from the knowledge
// base) when the workload changes.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"

	"vdtuner/internal/core"
	"vdtuner/internal/online"
	"vdtuner/internal/workload"
)

func main() {
	mgr := online.NewManager(online.ManagerOptions{
		Tuning:       core.Options{Seed: 41},
		InitialIters: 25,
		RetuneIters:  12,
	})

	// Three workload windows: the clustered phase repeats (no drift on a
	// stable workload), then the queries shift to near-uniform
	// high-spread traffic (drift, triggering a warm re-tune).
	phaseA := workload.Spec{Name: "phase-a", N: 1500, NQ: 30, Dim: 32, K: 10,
		Clusters: 12, ClusterStd: 0.4, Correlated: true, Seed: 1}
	phaseB := workload.Spec{Name: "phase-b", N: 1500, NQ: 30, Dim: 32, K: 10,
		Clusters: 64, ClusterStd: 1.6, Seed: 3}
	windows := []workload.Spec{phaseA, phaseA, phaseB}
	for i, spec := range windows {
		ds, err := workload.Load(spec)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := mgr.ServeWindow(ds)
		if err != nil {
			log.Fatal(err)
		}
		cfg, _ := mgr.Best()
		fmt.Printf("window %d (%s): drift %.3f  retuned=%v  deployed %-9v  QPS %8.1f  recall %.4f\n",
			i+1, spec.Name, rep.DriftScore, rep.Retuned, cfg.IndexType, rep.Result.QPS, rep.Result.Recall)
	}
	fmt.Printf("total re-tuning sessions: %d\n", mgr.Retunes())
}
