// Preference: optimize search speed subject to a user recall floor, then
// tighten the floor and bootstrap the second run from the first (paper
// §IV-F / Figure 12).
//
//	go run ./examples/preference
package main

import (
	"fmt"
	"log"

	"vdtuner/internal/core"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

func main() {
	ds, err := workload.Load(workload.GloVeLike(0.2))
	if err != nil {
		log.Fatal(err)
	}
	const itersPerPhase = 30

	// Phase 1: the user wants recall > 0.85, speed maximized. The
	// constraint model (CEI acquisition) focuses sampling on the
	// feasible region instead of mapping the whole trade-off curve.
	phase1 := core.New(core.Options{Seed: 11, RecallFloor: 0.85})
	run(ds, phase1, itersPerPhase)
	report(phase1, 0.85, "phase 1 (recall > 0.85)")

	// Phase 2: the preference tightens to recall > 0.9. Bootstrapping
	// warms the new surrogate with phase 1's samples, so it starts from
	// an approximate map of the space instead of from scratch.
	phase2 := core.New(core.Options{
		Seed: 12, RecallFloor: 0.9, Bootstrap: phase1.Observations(),
	})
	run(ds, phase2, itersPerPhase)
	report(phase2, 0.9, "phase 2 (recall > 0.90, bootstrapped)")
}

func run(ds *workload.Dataset, tn *core.Tuner, iters int) {
	for i := 0; i < iters; i++ {
		cfg := tn.Next()
		tn.Observe(cfg, vdms.Evaluate(ds, cfg))
	}
}

func report(tn *core.Tuner, floor float64, label string) {
	best, ok := tn.BestUnderRecall(floor)
	if !ok {
		fmt.Printf("%s: nothing feasible found\n", label)
		return
	}
	fmt.Printf("%s: best QPS %.1f at recall %.4f (index %v, nprobe=%d, ef=%d)\n",
		label, best.Result.QPS, best.Result.Recall, best.Config.IndexType,
		best.Config.Search.NProbe, best.Config.Search.Ef)
}
