//go:build race

package vdtuner

// raceEnabled reports whether the race detector is compiled in; timing
// assertions are skipped under -race because instrumentation overhead
// swamps the parallel speedup being measured.
const raceEnabled = true
